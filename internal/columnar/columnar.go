// Package columnar implements the columnar storage access method
// (CREATE TABLE ... USING columnar), the capability Table 2 of the paper
// requires for data-warehousing workloads. Rows are organized into
// column-major stripes; scans touch only the columns a query references,
// and column chunks compress (modelled as a reduced page count charged to
// the buffer pool), which is where the fast-scan advantage comes from.
//
// Beyond the row-at-a-time Scan, the table exposes chunk-granular batch
// access (VisibleStripes + LoadChunk): an executor reads whole column
// slices per stripe without materializing rows, consults per-column
// min/max chunk statistics to skip stripes a predicate can never match,
// and runs vectorized kernels (internal/vec) over the raw slices.
//
// Like the early Citus columnar access method, the format is append-only:
// INSERT and COPY are supported, UPDATE/DELETE are not.
package columnar

import (
	"sync"
	"sync/atomic"
	"time"

	"citusgo/internal/bufpool"
	"citusgo/internal/txn"
	"citusgo/internal/types"
)

// StripeRows caps how many rows one stripe holds.
const StripeRows = 10000

// CompressionFactor models how many heap-equivalent pages one columnar
// page replaces (delta/dictionary encoding on sorted, low-cardinality
// analytics data).
const CompressionFactor = 8

// rowsPerHeapPage mirrors heap.TuplesPerPage for the I/O cost model.
const rowsPerHeapPage = 64

// chunkPageStride is the page-ID stride reserved per (stripe, column)
// chunk: chunk (si, ci) owns pages [(si*ncols+ci)*stride,
// (si*ncols+ci+1)*stride). A full stripe needs
// ceil(StripeRows/(rowsPerHeapPage*CompressionFactor)) pages, so distinct
// chunks can never collide as long as that fits in the stride.
const chunkPageStride = 1024

// maxPagesPerChunk is the page count of a full stripe's chunk.
const maxPagesPerChunk = (StripeRows + rowsPerHeapPage*CompressionFactor - 1) /
	(rowsPerHeapPage * CompressionFactor)

// Compile-time guard: one chunk's pages fit inside its page-ID stride.
var _ [chunkPageStride - maxPagesPerChunk]struct{}

// colStats tracks the min/max of one column chunk for stripe skipping.
// Only homogeneous chunks of ordered types (int64, float64, string,
// time.Time) carry stats; NULLs are ignored (they never satisfy a
// comparison predicate, so a [min,max] proof over non-null values is
// enough to skip the whole stripe).
type colStats struct {
	min, max types.Datum
	bad      bool // mixed or unordered types; stats unusable
}

func statsTracked(v types.Datum) bool {
	switch v.(type) {
	case int64, float64, string, time.Time:
		return true
	}
	return false
}

func sameStatType(a, b types.Datum) bool {
	switch a.(type) {
	case int64:
		_, ok := b.(int64)
		return ok
	case float64:
		_, ok := b.(float64)
		return ok
	case string:
		_, ok := b.(string)
		return ok
	case time.Time:
		_, ok := b.(time.Time)
		return ok
	}
	return false
}

func (s *colStats) update(v types.Datum) {
	if v == nil || s.bad {
		return
	}
	if !statsTracked(v) {
		s.bad = true
		s.min, s.max = nil, nil
		return
	}
	if s.min == nil {
		s.min, s.max = v, v
		return
	}
	if !sameStatType(s.min, v) {
		s.bad = true
		s.min, s.max = nil, nil
		return
	}
	if types.Compare(v, s.min) < 0 {
		s.min = v
	}
	if types.Compare(v, s.max) > 0 {
		s.max = v
	}
}

type stripe struct {
	xmin  uint64
	cols  [][]types.Datum // column-major
	stats []colStats      // per-column chunk min/max
	n     int
}

// Table is an append-only columnar table.
type Table struct {
	ID   int64
	pool *bufpool.Pool

	mu      sync.RWMutex
	ncols   int
	stripes []*stripe
	nRows   atomic.Int64
}

// NewTable creates an empty columnar table with ncols columns.
func NewTable(id int64, ncols int, pool *bufpool.Pool) *Table {
	if pool == nil {
		pool = bufpool.Unlimited()
	}
	return &Table{ID: id, ncols: ncols, pool: pool}
}

// Insert appends a row written by transaction xid. Rows from different
// transactions go to different stripes so stripe visibility stays a single
// xmin check.
func (t *Table) Insert(xid uint64, row types.Row) {
	t.mu.Lock()
	var st *stripe
	if n := len(t.stripes); n > 0 {
		last := t.stripes[n-1]
		if last.xmin == xid && last.n < StripeRows {
			st = last
		}
	}
	if st == nil {
		st = &stripe{
			xmin:  xid,
			cols:  make([][]types.Datum, t.ncols),
			stats: make([]colStats, t.ncols),
		}
		t.stripes = append(t.stripes, st)
	}
	for i := 0; i < t.ncols; i++ {
		var v types.Datum
		if i < len(row) {
			v = row[i]
		}
		st.cols[i] = append(st.cols[i], v)
		st.stats[i].update(v)
	}
	st.n++
	t.mu.Unlock()
	t.nRows.Add(1)
}

// pagesForChunk computes the simulated page count of one column chunk.
func pagesForChunk(nrows int) int32 {
	rowsPerPage := rowsPerHeapPage * CompressionFactor
	return int32((nrows + rowsPerPage - 1) / rowsPerPage)
}

// StripeView is a read-only handle on one visible stripe. The underlying
// column slices are append-only and the stripe was committed (or written
// by the scanning transaction itself) before the view was taken, so the
// view stays valid without locks even across a concurrent Truncate.
type StripeView struct {
	st *stripe
	si int // stripe index at view time; keys the simulated page IDs
}

// NumRows returns the stripe's row count.
func (v StripeView) NumRows() int { return v.st.n }

// Stats returns the chunk min/max for one column. ok is false when the
// chunk carries no usable statistics (empty, all NULL, or values of mixed
// or unordered types) — callers must then treat the stripe as unskippable.
func (v StripeView) Stats(col int) (min, max types.Datum, ok bool) {
	s := &v.st.stats[col]
	if s.bad || s.min == nil {
		return nil, nil, false
	}
	return s.min, s.max, true
}

// VisibleStripes snapshots the stripes visible to s. No chunk I/O is
// charged: stats live in stripe metadata, so a caller can decide which
// stripes to skip before paying for any column chunk.
func (t *Table) VisibleStripes(mgr *txn.Manager, s txn.Snapshot) []StripeView {
	t.mu.RLock()
	// The backing array is append-only and stripes are never reassigned,
	// so reading the slice header under the read lock is all the copying
	// a scan needs.
	stripes := t.stripes
	t.mu.RUnlock()

	views := make([]StripeView, 0, len(stripes))
	for si, st := range stripes {
		if st.xmin == s.Self || mgr.Sees(s, st.xmin) {
			views = append(views, StripeView{st: st, si: si})
		}
	}
	return views
}

// LoadChunk charges buffer-pool I/O for the needed columns of one stripe
// (nil = all) and returns the stripe's column slices, indexed by table
// column ordinal; columns outside needed are nil. The slices are live
// storage: callers must treat them as read-only.
func (t *Table) LoadChunk(v StripeView, needed []int) [][]types.Datum {
	out := make([][]types.Datum, t.ncols)
	charge := func(ci int) {
		pages := pagesForChunk(v.st.n)
		base := int32(v.si*t.ncols+ci) * chunkPageStride
		for p := int32(0); p < pages; p++ {
			t.pool.Access(bufpool.PageID{Table: t.ID, Page: base + p})
		}
	}
	if needed == nil {
		for ci := 0; ci < t.ncols; ci++ {
			charge(ci)
			out[ci] = v.st.cols[ci][:v.st.n]
		}
		return out
	}
	for _, ci := range needed {
		charge(ci)
		out[ci] = v.st.cols[ci][:v.st.n]
	}
	return out
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return t.ncols }

// Scan iterates visible rows, charging buffer-pool I/O only for the needed
// columns (nil = all). fn returning false stops the scan.
//
// Aliasing contract: the types.Row passed to fn is a scratch buffer reused
// for every row. Callers that retain a row beyond the callback must copy
// it first (the engine's executor nodes either transform rows into fresh
// output rows or clone before buffering, so the hot scan path allocates
// nothing per row).
func (t *Table) Scan(mgr *txn.Manager, s txn.Snapshot, needed []int, fn func(row types.Row) bool) {
	views := t.VisibleStripes(mgr, s)
	if len(views) == 0 {
		return
	}
	cols := needed
	if cols == nil {
		cols = make([]int, t.ncols)
		for i := range cols {
			cols[i] = i
		}
	}
	scratch := make(types.Row, t.ncols)
	for _, v := range views {
		chunk := t.LoadChunk(v, needed)
		for r := 0; r < v.NumRows(); r++ {
			for _, ci := range cols {
				scratch[ci] = chunk[ci][r]
			}
			if !fn(scratch) {
				return
			}
		}
	}
}

// EstimatedRows returns the row count statistic.
func (t *Table) EstimatedRows() int64 { return t.nRows.Load() }

// NumStripes returns the stripe count.
func (t *Table) NumStripes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.stripes)
}

// Truncate drops all data.
func (t *Table) Truncate() {
	t.mu.Lock()
	t.stripes = nil
	t.mu.Unlock()
	t.nRows.Store(0)
	t.pool.Forget(t.ID)
}
