package columnar

import (
	"testing"

	"citusgo/internal/bufpool"
	"citusgo/internal/txn"
	"citusgo/internal/types"
)

func TestInsertAndScan(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, 3, nil)
	t1 := mgr.Begin()
	for i := 0; i < 100; i++ {
		tbl.Insert(t1.XID, types.Row{int64(i), float64(i) * 1.5, "x"})
	}
	_ = mgr.Commit(t1)
	count := 0
	tbl.Scan(mgr, mgr.TakeSnapshot(nil), nil, func(row types.Row) bool {
		if row[0].(int64) == 50 && row[1].(float64) != 75 {
			t.Fatalf("bad row: %v", row)
		}
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("scanned %d rows", count)
	}
	if tbl.EstimatedRows() != 100 {
		t.Fatalf("estimate = %d", tbl.EstimatedRows())
	}
}

func TestStripeVisibility(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, 1, nil)
	t1 := mgr.Begin()
	tbl.Insert(t1.XID, types.Row{int64(1)})
	// uncommitted stripes are invisible to other snapshots
	count := 0
	tbl.Scan(mgr, mgr.TakeSnapshot(nil), nil, func(types.Row) bool { count++; return true })
	if count != 0 {
		t.Fatal("uncommitted stripe visible")
	}
	// but visible to the writer
	tbl.Scan(mgr, mgr.TakeSnapshot(t1), nil, func(types.Row) bool { count++; return true })
	if count != 1 {
		t.Fatal("own stripe invisible")
	}
	mgr.Abort(t1)
	count = 0
	tbl.Scan(mgr, mgr.TakeSnapshot(nil), nil, func(types.Row) bool { count++; return true })
	if count != 0 {
		t.Fatal("aborted stripe visible")
	}
}

func TestSeparateTransactionsSeparateStripes(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, 1, nil)
	for i := 0; i < 3; i++ {
		tn := mgr.Begin()
		tbl.Insert(tn.XID, types.Row{int64(i)})
		_ = mgr.Commit(tn)
	}
	if tbl.NumStripes() != 3 {
		t.Fatalf("stripes = %d", tbl.NumStripes())
	}
}

func TestColumnProjectionReducesIO(t *testing.T) {
	// the point of columnar storage: scanning one column of a wide table
	// touches a fraction of the pages
	mgr := txn.NewManager()
	pool := bufpool.New(bufpool.Config{CapacityPages: 100000, IOLatency: 1})
	wide := NewTable(1, 10, pool)
	t1 := mgr.Begin()
	for i := 0; i < StripeRows; i++ {
		row := make(types.Row, 10)
		for c := range row {
			row[c] = int64(i * c)
		}
		wide.Insert(t1.XID, row)
	}
	_ = mgr.Commit(t1)

	_, missesBefore := pool.Stats()
	wide.Scan(mgr, mgr.TakeSnapshot(nil), []int{0}, func(types.Row) bool { return true })
	_, missesOneCol := pool.Stats()
	wide.Scan(mgr, mgr.TakeSnapshot(nil), nil, func(types.Row) bool { return true })
	_, missesAll := pool.Stats()

	oneCol := missesOneCol - missesBefore
	allCols := missesAll - missesOneCol
	if allCols < 8*oneCol {
		t.Fatalf("projection saved too little I/O: 1 col = %d pages, 10 cols = %d pages", oneCol, allCols)
	}
}

func TestTruncate(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, 1, nil)
	t1 := mgr.Begin()
	tbl.Insert(t1.XID, types.Row{int64(1)})
	_ = mgr.Commit(t1)
	tbl.Truncate()
	if tbl.EstimatedRows() != 0 || tbl.NumStripes() != 0 {
		t.Fatal("truncate left data")
	}
}
