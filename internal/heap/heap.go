// Package heap implements MVCC heap storage: append-only tuple versions
// stamped with creating (xmin) and deleting (xmax) transaction ids, update
// chains, snapshot-based visibility, and vacuum. This is the row store that
// backs regular tables and shards on every node.
package heap

import (
	"sync"
	"sync/atomic"

	"citusgo/internal/bufpool"
	"citusgo/internal/txn"
	"citusgo/internal/types"
)

// TuplesPerPage fixes how many tuple slots one simulated page holds; the
// buffer pool charges I/O per page.
const TuplesPerPage = 64

// TID addresses a tuple version: page*TuplesPerPage + slot.
type TID int64

// NilTID marks "no tuple" (update chain terminator).
const NilTID TID = -1

func (t TID) page() int32 { return int32(t / TuplesPerPage) }
func (t TID) slot() int   { return int(t % TuplesPerPage) }

// Tuple is one stored row version.
type Tuple struct {
	Xmin uint64
	Xmax uint64
	Next TID // newer version in the update chain, NilTID if latest
	Dead bool
	Row  types.Row
}

type page struct {
	tuples []Tuple
}

// Table is one MVCC heap.
type Table struct {
	ID   int64
	pool *bufpool.Pool

	mu      sync.RWMutex
	pages   []*page
	nLive   atomic.Int64
	nTuples atomic.Int64
}

// NewTable creates an empty heap for table id, charging page accesses to
// pool.
func NewTable(id int64, pool *bufpool.Pool) *Table {
	if pool == nil {
		pool = bufpool.Unlimited()
	}
	return &Table{ID: id, pool: pool}
}

// Insert appends a new tuple version created by xid and returns its TID.
func (t *Table) Insert(xid uint64, row types.Row) TID {
	t.mu.Lock()
	var pg *page
	if n := len(t.pages); n > 0 && len(t.pages[n-1].tuples) < TuplesPerPage {
		pg = t.pages[n-1]
	} else {
		pg = &page{tuples: make([]Tuple, 0, TuplesPerPage)}
		t.pages = append(t.pages, pg)
	}
	pageIdx := len(t.pages) - 1
	slot := len(pg.tuples)
	pg.tuples = append(pg.tuples, Tuple{Xmin: xid, Xmax: 0, Next: NilTID, Row: row})
	t.mu.Unlock()

	t.nLive.Add(1)
	t.nTuples.Add(1)
	t.pool.Access(bufpool.PageID{Table: t.ID, Page: int32(pageIdx)})
	return TID(int64(pageIdx)*TuplesPerPage + int64(slot))
}

// Get returns a copy of the tuple at tid (charging a page access) and
// whether it exists.
func (t *Table) Get(tid TID) (Tuple, bool) {
	if tid < 0 {
		return Tuple{}, false
	}
	t.pool.Access(bufpool.PageID{Table: t.ID, Page: tid.page()})
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := int(tid.page())
	if p >= len(t.pages) || tid.slot() >= len(t.pages[p].tuples) {
		return Tuple{}, false
	}
	return t.pages[p].tuples[tid.slot()], true
}

// MarkDeleted stamps the tuple at tid with deleting transaction xid and,
// when newVersion != NilTID, links the update chain. The caller must hold
// the row lock. Overwriting an aborted deleter's xmax is allowed, like
// PostgreSQL reusing the xmax of a rolled-back update.
func (t *Table) MarkDeleted(tid TID, xid uint64, newVersion TID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := int(tid.page())
	if p >= len(t.pages) || tid.slot() >= len(t.pages[p].tuples) {
		return false
	}
	tup := &t.pages[p].tuples[tid.slot()]
	tup.Xmax = xid
	tup.Next = newVersion
	return true
}

// ClearDelete undoes MarkDeleted after the deleting transaction aborted the
// statement (not used for whole-transaction abort, which is handled by the
// clog: an aborted xmax is simply ignored by visibility checks).
func (t *Table) ClearDelete(tid TID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := int(tid.page())
	if p < len(t.pages) && tid.slot() < len(t.pages[p].tuples) {
		tup := &t.pages[p].tuples[tid.slot()]
		tup.Xmax = 0
		tup.Next = NilTID
	}
}

// Visible applies the MVCC visibility rules for tuple tup under snapshot s.
func Visible(mgr *txn.Manager, s txn.Snapshot, tup Tuple) bool {
	if tup.Dead {
		return false
	}
	if tup.Xmin == s.Self {
		// our own insert: visible unless we deleted it ourselves
		return tup.Xmax != s.Self
	}
	if !mgr.Sees(s, tup.Xmin) {
		return false
	}
	if tup.Xmax == 0 {
		return true
	}
	if tup.Xmax == s.Self {
		return false
	}
	return !mgr.Sees(s, tup.Xmax)
}

// Scan iterates all visible tuples under snapshot s, calling fn for each;
// fn returning false stops the scan. Page accesses are charged to the
// buffer pool.
func (t *Table) Scan(mgr *txn.Manager, s txn.Snapshot, fn func(tid TID, row types.Row) bool) {
	t.mu.RLock()
	numPages := len(t.pages)
	t.mu.RUnlock()
	for p := 0; p < numPages; p++ {
		t.pool.Access(bufpool.PageID{Table: t.ID, Page: int32(p)})
		t.mu.RLock()
		// copy the page's tuples so fn runs without the table lock
		tuples := make([]Tuple, len(t.pages[p].tuples))
		copy(tuples, t.pages[p].tuples)
		t.mu.RUnlock()
		for slot := range tuples {
			if !Visible(mgr, s, tuples[slot]) {
				continue
			}
			tid := TID(int64(p)*TuplesPerPage + int64(slot))
			if !fn(tid, tuples[slot].Row) {
				return
			}
		}
	}
}

// AllTuples visits every non-dead tuple version regardless of visibility
// (index builds, replication).
func (t *Table) AllTuples(fn func(tid TID, tup Tuple) bool) {
	t.mu.RLock()
	numPages := len(t.pages)
	t.mu.RUnlock()
	for p := 0; p < numPages; p++ {
		t.mu.RLock()
		tuples := make([]Tuple, len(t.pages[p].tuples))
		copy(tuples, t.pages[p].tuples)
		t.mu.RUnlock()
		for slot := range tuples {
			if tuples[slot].Dead {
				continue
			}
			if !fn(TID(int64(p)*TuplesPerPage+int64(slot)), tuples[slot]) {
				return
			}
		}
	}
}

// LatestVersion follows the update chain from tid to the newest version,
// returning its TID and tuple.
func (t *Table) LatestVersion(tid TID) (TID, Tuple, bool) {
	for {
		tup, ok := t.Get(tid)
		if !ok {
			return NilTID, Tuple{}, false
		}
		if tup.Next == NilTID {
			return tid, tup, true
		}
		tid = tup.Next
	}
}

// VacuumedTuple reports one reclaimed version: its TID and the row image,
// which the caller needs to delete the matching index entries.
type VacuumedTuple struct {
	TID TID
	Row types.Row
}

// Vacuum reclaims dead tuple versions: versions deleted by a transaction
// that committed before the global xmin horizon, and versions created by
// aborted transactions. Slots are tombstoned (TIDs stay stable), and the
// reclaimed tuples are returned so the caller can vacuum indexes.
func (t *Table) Vacuum(mgr *txn.Manager, horizon uint64) []VacuumedTuple {
	var reclaimed []VacuumedTuple
	t.mu.Lock()
	defer t.mu.Unlock()
	for p, pg := range t.pages {
		for slot := range pg.tuples {
			tup := &pg.tuples[slot]
			if tup.Dead {
				continue
			}
			dead := false
			if mgr.Status(tup.Xmin) == txn.Aborted {
				dead = true
			} else if tup.Xmax != 0 && tup.Xmax < horizon && mgr.Status(tup.Xmax) == txn.Committed {
				dead = true
			}
			if dead {
				reclaimed = append(reclaimed, VacuumedTuple{
					TID: TID(int64(p)*TuplesPerPage + int64(slot)),
					Row: tup.Row,
				})
				tup.Dead = true
				tup.Row = nil
				t.nLive.Add(-1)
			}
		}
	}
	return reclaimed
}

// Truncate drops all data.
func (t *Table) Truncate() {
	t.mu.Lock()
	t.pages = nil
	t.mu.Unlock()
	t.nLive.Store(0)
	t.nTuples.Store(0)
	t.pool.Forget(t.ID)
}

// EstimatedRows returns the approximate live row count (planner statistic).
func (t *Table) EstimatedRows() int64 { return t.nLive.Load() }

// NumPages returns the current page count.
func (t *Table) NumPages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.pages)
}

// NoteDeleteCommitted adjusts the live-row statistic after a delete commits.
func (t *Table) NoteDeleteCommitted() { t.nLive.Add(-1) }
