package heap

import (
	"testing"

	"citusgo/internal/txn"
	"citusgo/internal/types"
)

func TestInsertAndScanVisibility(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)

	t1 := mgr.Begin()
	tbl.Insert(t1.XID, types.Row{int64(1), "one"})

	// invisible to others before commit
	snap := mgr.TakeSnapshot(nil)
	count := 0
	tbl.Scan(mgr, snap, func(TID, types.Row) bool { count++; return true })
	if count != 0 {
		t.Fatal("uncommitted insert visible")
	}
	// visible to itself
	selfSnap := mgr.TakeSnapshot(t1)
	tbl.Scan(mgr, selfSnap, func(TID, types.Row) bool { count++; return true })
	if count != 1 {
		t.Fatal("own insert invisible")
	}
	_ = mgr.Commit(t1)
	count = 0
	tbl.Scan(mgr, mgr.TakeSnapshot(nil), func(TID, types.Row) bool { count++; return true })
	if count != 1 {
		t.Fatal("committed insert invisible")
	}
}

func TestDeleteVisibility(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)
	t1 := mgr.Begin()
	tid := tbl.Insert(t1.XID, types.Row{int64(1)})
	_ = mgr.Commit(t1)

	t2 := mgr.Begin()
	tbl.MarkDeleted(tid, t2.XID, NilTID)
	// deleter no longer sees it; others still do
	if visibleCount(tbl, mgr, mgr.TakeSnapshot(t2)) != 0 {
		t.Fatal("deleter still sees deleted row")
	}
	if visibleCount(tbl, mgr, mgr.TakeSnapshot(nil)) != 1 {
		t.Fatal("concurrent snapshot must still see the row")
	}
	_ = mgr.Commit(t2)
	if visibleCount(tbl, mgr, mgr.TakeSnapshot(nil)) != 0 {
		t.Fatal("deleted row visible after commit")
	}
}

func TestAbortedDeleteStaysVisible(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)
	t1 := mgr.Begin()
	tid := tbl.Insert(t1.XID, types.Row{int64(1)})
	_ = mgr.Commit(t1)

	t2 := mgr.Begin()
	tbl.MarkDeleted(tid, t2.XID, NilTID)
	mgr.Abort(t2)
	if visibleCount(tbl, mgr, mgr.TakeSnapshot(nil)) != 1 {
		t.Fatal("row deleted by an aborted transaction must stay visible")
	}
}

func TestUpdateChain(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)
	t1 := mgr.Begin()
	v1 := tbl.Insert(t1.XID, types.Row{int64(1), "v1"})
	_ = mgr.Commit(t1)

	t2 := mgr.Begin()
	v2 := tbl.Insert(t2.XID, types.Row{int64(1), "v2"})
	tbl.MarkDeleted(v1, t2.XID, v2)
	_ = mgr.Commit(t2)

	latestTID, tup, ok := tbl.LatestVersion(v1)
	if !ok || latestTID != v2 || tup.Row[1] != "v2" {
		t.Fatalf("chain: tid=%d ok=%v", latestTID, ok)
	}
	// only the new version is visible
	if visibleCount(tbl, mgr, mgr.TakeSnapshot(nil)) != 1 {
		t.Fatal("expected exactly one visible version")
	}
}

func TestVacuumReclaims(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)
	var lastTID TID
	t1 := mgr.Begin()
	lastTID = tbl.Insert(t1.XID, types.Row{int64(0)})
	_ = mgr.Commit(t1)
	for i := 0; i < 5; i++ {
		tn := mgr.Begin()
		newTID := tbl.Insert(tn.XID, types.Row{int64(i + 1)})
		tbl.MarkDeleted(lastTID, tn.XID, newTID)
		lastTID = newTID
		_ = mgr.Commit(tn)
	}
	reclaimed := tbl.Vacuum(mgr, mgr.GlobalXmin())
	if len(reclaimed) != 5 {
		t.Fatalf("reclaimed %d, want 5", len(reclaimed))
	}
	for _, vt := range reclaimed {
		if vt.Row == nil {
			t.Fatal("vacuum must report the row image for index cleanup")
		}
	}
	if visibleCount(tbl, mgr, mgr.TakeSnapshot(nil)) != 1 {
		t.Fatal("live row lost by vacuum")
	}
	if tbl.EstimatedRows() != 1 {
		t.Fatalf("estimate = %d", tbl.EstimatedRows())
	}
	// vacuum is idempotent
	if again := tbl.Vacuum(mgr, mgr.GlobalXmin()); len(again) != 0 {
		t.Fatalf("second vacuum reclaimed %d", len(again))
	}
}

func TestVacuumRespectsHorizon(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)
	t1 := mgr.Begin()
	tid := tbl.Insert(t1.XID, types.Row{int64(1)})
	_ = mgr.Commit(t1)

	// an old reader is still running
	oldReader := mgr.Begin()
	t2 := mgr.Begin()
	tbl.MarkDeleted(tid, t2.XID, NilTID)
	_ = mgr.Commit(t2)

	if reclaimed := tbl.Vacuum(mgr, mgr.GlobalXmin()); len(reclaimed) != 0 {
		t.Fatal("vacuum reclaimed a version an old snapshot may need")
	}
	_ = mgr.Commit(oldReader)
	if reclaimed := tbl.Vacuum(mgr, mgr.GlobalXmin()); len(reclaimed) != 1 {
		t.Fatal("vacuum should reclaim after the old reader finished")
	}
}

func TestAbortedInsertVacuumed(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)
	t1 := mgr.Begin()
	tbl.Insert(t1.XID, types.Row{int64(1)})
	mgr.Abort(t1)
	if reclaimed := tbl.Vacuum(mgr, mgr.GlobalXmin()); len(reclaimed) != 1 {
		t.Fatalf("aborted insert not reclaimed: %d", len(reclaimed))
	}
}

func TestTIDAddressing(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)
	t1 := mgr.Begin()
	var tids []TID
	for i := 0; i < TuplesPerPage*3+5; i++ {
		tids = append(tids, tbl.Insert(t1.XID, types.Row{int64(i)}))
	}
	_ = mgr.Commit(t1)
	if tbl.NumPages() != 4 {
		t.Fatalf("pages = %d", tbl.NumPages())
	}
	for i, tid := range tids {
		tup, ok := tbl.Get(tid)
		if !ok || tup.Row[0].(int64) != int64(i) {
			t.Fatalf("get(%d) = %v, %v", tid, tup, ok)
		}
	}
	if _, ok := tbl.Get(TID(999999)); ok {
		t.Fatal("out-of-range TID resolved")
	}
	if _, ok := tbl.Get(NilTID); ok {
		t.Fatal("nil TID resolved")
	}
}

func TestTruncate(t *testing.T) {
	mgr := txn.NewManager()
	tbl := NewTable(1, nil)
	t1 := mgr.Begin()
	tbl.Insert(t1.XID, types.Row{int64(1)})
	_ = mgr.Commit(t1)
	tbl.Truncate()
	if visibleCount(tbl, mgr, mgr.TakeSnapshot(nil)) != 0 || tbl.EstimatedRows() != 0 {
		t.Fatal("truncate left data")
	}
}

func visibleCount(tbl *Table, mgr *txn.Manager, snap txn.Snapshot) int {
	count := 0
	tbl.Scan(mgr, snap, func(TID, types.Row) bool { count++; return true })
	return count
}
