package citus_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"citusgo/internal/citus"
	"citusgo/internal/cluster"
	"citusgo/internal/engine"
	"citusgo/internal/types"
)

func newCluster(t *testing.T, workers int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Workers:               workers,
		ShardCount:            8,
		SyncMetadata:          false,
		LocalDeadlockInterval: 20 * time.Millisecond,
		// Set before StartDaemons runs: the deadlock loop goroutine reads
		// Cfg, so mutating it after cluster.New is a data race.
		// RecoveryGrace is disabled: these tests hand-craft orphaned
		// prepared transactions and expect recovery to resolve them
		// immediately, without waiting out the anti-race grace period.
		Citus: citus.Config{DeadlockInterval: 50 * time.Millisecond, RecoveryGrace: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func mustExec(t *testing.T, s *engine.Session, q string, params ...types.Datum) *engine.Result {
	t.Helper()
	res, err := s.Exec(q, params...)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func rowsText(res *engine.Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(types.Format(v))
		}
		sb.WriteByte('\n')
	}
	return strings.TrimSpace(sb.String())
}

func expectRows(t *testing.T, res *engine.Result, want string) {
	t.Helper()
	if got := rowsText(res); got != strings.TrimSpace(want) {
		t.Fatalf("rows mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCreateDistributedTable(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE items (id bigint PRIMARY KEY, name text)")
	mustExec(t, s, "INSERT INTO items (id, name) VALUES (1, 'pre-existing')")
	mustExec(t, s, "SELECT create_distributed_table('items', 'id')")

	// metadata recorded
	dt, ok := c.Meta.Table("items")
	if !ok || dt.DistColumn != "id" || dt.ShardCount != 8 {
		t.Fatalf("bad metadata: %+v", dt)
	}
	// shards spread across the two workers
	placements := map[int]int{}
	for _, sh := range c.Meta.Shards("items") {
		nodeID, err := c.Meta.PrimaryPlacement(sh.ID)
		if err != nil {
			t.Fatal(err)
		}
		placements[nodeID]++
	}
	if placements[2] != 4 || placements[3] != 4 {
		t.Fatalf("expected 4+4 round-robin placement, got %v", placements)
	}
	// pre-existing data survived the conversion
	expectRows(t, mustExec(t, s, "SELECT name FROM items WHERE id = 1"), "pre-existing")
}

func TestRouterAndFastPathQueries(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE kv (k bigint PRIMARY KEY, v text)")
	mustExec(t, s, "SELECT create_distributed_table('kv', 'k')")

	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO kv (k, v) VALUES (%d, 'v%d')", i, i))
	}
	// point reads route to single shards
	for i := 0; i < 50; i++ {
		expectRows(t, mustExec(t, s, "SELECT v FROM kv WHERE k = $1", int64(i)), fmt.Sprintf("v%d", i))
	}
	// router update / delete
	mustExec(t, s, "UPDATE kv SET v = 'changed' WHERE k = 7")
	expectRows(t, mustExec(t, s, "SELECT v FROM kv WHERE k = 7"), "changed")
	res := mustExec(t, s, "DELETE FROM kv WHERE k = 7")
	if res.Affected != 1 {
		t.Fatalf("delete affected %d", res.Affected)
	}
	// explain shows the router
	res = mustExec(t, s, "EXPLAIN SELECT v FROM kv WHERE k = 3")
	if !strings.Contains(rowsText(res), "Citus Router") {
		t.Fatalf("expected router plan:\n%s", rowsText(res))
	}
}

func TestPushdownAggregation(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE events (id bigint PRIMARY KEY, kind text, amount bigint)")
	mustExec(t, s, "SELECT create_distributed_table('events', 'id')")
	for i := 0; i < 100; i++ {
		kind := "a"
		if i%3 == 0 {
			kind = "b"
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO events (id, kind, amount) VALUES (%d, '%s', %d)", i, kind, i))
	}
	// cross-shard count
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM events"), "100")
	// group by non-distribution column forces partial aggregation + merge
	res := mustExec(t, s, "SELECT kind, count(*), sum(amount), avg(amount) FROM events GROUP BY kind ORDER BY kind")
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 groups, got %v", res.Rows)
	}
	// verify against a local computation: kind 'b' is i % 3 == 0 -> 34 rows
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM events WHERE kind = 'b'"), "34")
	// min / max across shards
	expectRows(t, mustExec(t, s, "SELECT min(amount), max(amount) FROM events"), "0|99")
	// ORDER BY + LIMIT across shards
	expectRows(t, mustExec(t, s, "SELECT amount FROM events ORDER BY amount DESC LIMIT 3"), "99\n98\n97")
	// HAVING over merged aggregates
	res = mustExec(t, s, "SELECT kind FROM events GROUP BY kind HAVING count(*) > 40 ORDER BY kind")
	expectRows(t, res, "a")
}

func TestGroupByDistributionColumnPushdown(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE m (device bigint, metric double precision)")
	mustExec(t, s, "SELECT create_distributed_table('m', 'device')")
	for d := 0; d < 10; d++ {
		for j := 0; j < 5; j++ {
			mustExec(t, s, fmt.Sprintf("INSERT INTO m (device, metric) VALUES (%d, %d)", d, j))
		}
	}
	res := mustExec(t, s, "SELECT device, avg(metric) FROM m GROUP BY device ORDER BY device")
	if len(res.Rows) != 10 {
		t.Fatalf("want 10 devices, got %d", len(res.Rows))
	}
	if types.Format(res.Rows[0][1]) != "2.0" {
		t.Fatalf("avg wrong: %v", res.Rows[0])
	}
}

func TestVeniceDBQueryShape(t *testing.T) {
	// §5: nested subquery grouping by the distribution column is pushed
	// down; the outer aggregate is merged on the coordinator.
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE reports (deviceid bigint, build text, metric double precision)")
	mustExec(t, s, "SELECT create_distributed_table('reports', 'deviceid')")
	for d := 0; d < 20; d++ {
		for j := 0; j < 3; j++ {
			mustExec(t, s, fmt.Sprintf("INSERT INTO reports (deviceid, build, metric) VALUES (%d, 'b1', %d)", d, d+j))
		}
	}
	q := `SELECT avg(device_avg) FROM (
	        SELECT deviceid, avg(metric) AS device_avg
	        FROM reports WHERE build = 'b1'
	        GROUP BY deviceid) AS subq`
	res := mustExec(t, s, q)
	expectRows(t, res, "10.5")

	// and the plan confirms the pushdown
	res = mustExec(t, s, "EXPLAIN "+q)
	if !strings.Contains(rowsText(res), "pushdown") {
		t.Fatalf("expected logical pushdown:\n%s", rowsText(res))
	}
}

func TestReferenceTablesAndColocatedJoins(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE tenants (tenant_id bigint PRIMARY KEY, name text)")
	mustExec(t, s, "CREATE TABLE orders (tenant_id bigint, order_id bigint, item_id bigint, amount bigint)")
	mustExec(t, s, "CREATE TABLE order_lines (tenant_id bigint, order_id bigint, qty bigint)")
	mustExec(t, s, "CREATE TABLE items (item_id bigint PRIMARY KEY, label text)")

	mustExec(t, s, "SELECT create_distributed_table('tenants', 'tenant_id')")
	mustExec(t, s, "SELECT create_distributed_table('orders', 'tenant_id')")
	mustExec(t, s, "SELECT create_distributed_table('order_lines', 'tenant_id', colocate_with := 'orders')")
	mustExec(t, s, "SELECT create_reference_table('items')")

	// reference table write replicates everywhere
	mustExec(t, s, "INSERT INTO items (item_id, label) VALUES (1, 'widget'), (2, 'gadget')")
	for _, eng := range c.Engines {
		shardName := c.Meta.Shards("items")[0].ShardName()
		if rows := eng.TableRows(shardName); rows != 2 {
			t.Fatalf("reference replica on %s has %d rows, want 2", eng.Name, rows)
		}
	}

	for tenant := 1; tenant <= 6; tenant++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO tenants (tenant_id, name) VALUES (%d, 'tenant%d')", tenant, tenant))
		for o := 0; o < 3; o++ {
			mustExec(t, s, fmt.Sprintf(
				"INSERT INTO orders (tenant_id, order_id, item_id, amount) VALUES (%d, %d, %d, %d)",
				tenant, o, o%2+1, o*10))
			mustExec(t, s, fmt.Sprintf(
				"INSERT INTO order_lines (tenant_id, order_id, qty) VALUES (%d, %d, 2)", tenant, o))
		}
	}

	// router: single-tenant join with reference table (multi-tenant SaaS
	// pattern, §2.1)
	res := mustExec(t, s, `SELECT o.order_id, i.label, l.qty
		FROM orders o
		JOIN items i ON o.item_id = i.item_id
		JOIN order_lines l ON l.tenant_id = o.tenant_id AND l.order_id = o.order_id
		WHERE o.tenant_id = 3 ORDER BY o.order_id`)
	expectRows(t, res, "0|widget|2\n1|gadget|2\n2|widget|2")

	// cross-tenant analytics: co-located distributed join, parallel
	res = mustExec(t, s, `SELECT count(*) FROM orders o JOIN order_lines l
		ON o.tenant_id = l.tenant_id AND o.order_id = l.order_id`)
	expectRows(t, res, "18")
}

func TestMultiShardDML(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('t', 'k')")
	for i := 0; i < 40; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t (k, v) VALUES (%d, %d)", i, i))
	}
	res := mustExec(t, s, "UPDATE t SET v = v + 1000")
	if res.Affected != 40 {
		t.Fatalf("multi-shard update affected %d", res.Affected)
	}
	expectRows(t, mustExec(t, s, "SELECT min(v), max(v) FROM t"), "1000|1039")
	res = mustExec(t, s, "DELETE FROM t WHERE v >= 1020")
	if res.Affected != 20 {
		t.Fatalf("multi-shard delete affected %d", res.Affected)
	}
}

func TestDistributedCopy(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE bulk (id bigint PRIMARY KEY, payload text)")
	mustExec(t, s, "SELECT create_distributed_table('bulk', 'id')")

	rows := make([]types.Row, 1000)
	for i := range rows {
		rows[i] = types.Row{int64(i), fmt.Sprintf("payload-%d", i)}
	}
	n, err := s.CopyFrom("bulk", []string{"id", "payload"}, rows)
	if err != nil || n != 1000 {
		t.Fatalf("copy: n=%d err=%v", n, err)
	}
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM bulk"), "1000")
	expectRows(t, mustExec(t, s, "SELECT payload FROM bulk WHERE id = 567"), "payload-567")
}

func TestInsertSelectStrategies(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE raw (key bigint, day text, n bigint)")
	mustExec(t, s, "CREATE TABLE rollup (key bigint, day text, total bigint)")
	mustExec(t, s, "SELECT create_distributed_table('raw', 'key')")
	mustExec(t, s, "SELECT create_distributed_table('rollup', 'key', colocate_with := 'raw')")
	for i := 0; i < 60; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO raw (key, day, n) VALUES (%d, 'd%d', 1)", i%10, i%3))
	}
	// co-located INSERT..SELECT (rollup pattern, §2.2 / Figure 2)
	res := mustExec(t, s, "EXPLAIN INSERT INTO rollup (key, day, total) SELECT key, day, count(*) FROM raw GROUP BY key, day")
	if !strings.Contains(rowsText(res), "pushdown (co-located)") {
		t.Fatalf("expected co-located insert..select:\n%s", rowsText(res))
	}
	mustExec(t, s, "INSERT INTO rollup (key, day, total) SELECT key, day, count(*) FROM raw GROUP BY key, day")
	expectRows(t, mustExec(t, s, "SELECT sum(total) FROM rollup"), "60")

	// via-coordinator strategy: merge step needed (group by non-dist col)
	mustExec(t, s, "CREATE TABLE byday (day text, total bigint)")
	mustExec(t, s, "SELECT create_distributed_table('byday', 'day')")
	mustExec(t, s, "INSERT INTO byday (day, total) SELECT day, count(*) FROM raw GROUP BY day")
	expectRows(t, mustExec(t, s, "SELECT sum(total) FROM byday"), "60")
}

func TestTwoPhaseCommitAtomicity(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE acc (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('acc', 'k')")
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO acc (k, v) VALUES (%d, 100)", i))
	}
	// find two keys on different nodes
	k1, k2 := int64(-1), int64(-1)
	for i := int64(0); i < 20 && k2 == -1; i++ {
		sh, err := c.Meta.ShardForValue("acc", i)
		if err != nil {
			t.Fatal(err)
		}
		nodeID, _ := c.Meta.PrimaryPlacement(sh.ID)
		if k1 == -1 {
			k1 = i
			continue
		}
		sh1, _ := c.Meta.ShardForValue("acc", k1)
		node1, _ := c.Meta.PrimaryPlacement(sh1.ID)
		if nodeID != node1 {
			k2 = i
		}
	}
	if k2 == -1 {
		t.Fatal("could not find keys on two nodes")
	}

	// committed multi-node transaction: both updates or neither
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE acc SET v = v - 10 WHERE k = $1", k1)
	mustExec(t, s, "UPDATE acc SET v = v + 10 WHERE k = $1", k2)
	mustExec(t, s, "COMMIT")
	expectRows(t, mustExec(t, s, "SELECT v FROM acc WHERE k = $1", k1), "90")
	expectRows(t, mustExec(t, s, "SELECT v FROM acc WHERE k = $1", k2), "110")

	// rolled-back multi-node transaction leaves no trace
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE acc SET v = 0 WHERE k = $1", k1)
	mustExec(t, s, "UPDATE acc SET v = 0 WHERE k = $1", k2)
	mustExec(t, s, "ROLLBACK")
	expectRows(t, mustExec(t, s, "SELECT v FROM acc WHERE k = $1", k1), "90")
	expectRows(t, mustExec(t, s, "SELECT v FROM acc WHERE k = $1", k2), "110")

	// no dangling prepared transactions
	for _, eng := range c.Engines {
		if p := eng.Txns.ListPrepared(); len(p) != 0 {
			t.Fatalf("dangling prepared transactions on %s: %v", eng.Name, p)
		}
	}
}

func TestDistributedDeadlockDetection(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE dl (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('dl', 'k')")
	// find two keys on different nodes
	k1, k2 := int64(-1), int64(-1)
	for i := int64(0); i < 50 && k2 == -1; i++ {
		sh, _ := c.Meta.ShardForValue("dl", i)
		nodeID, _ := c.Meta.PrimaryPlacement(sh.ID)
		if k1 == -1 {
			k1 = i
			continue
		}
		sh1, _ := c.Meta.ShardForValue("dl", k1)
		node1, _ := c.Meta.PrimaryPlacement(sh1.ID)
		if nodeID != node1 {
			k2 = i
		}
	}
	mustExec(t, s, "INSERT INTO dl (k, v) VALUES ($1, 0), ($2, 0)", k1, k2)

	s1 := c.Session()
	s2 := c.Session()
	mustExec(t, s1, "BEGIN")
	mustExec(t, s2, "BEGIN")
	mustExec(t, s1, "UPDATE dl SET v = 1 WHERE k = $1", k1)
	mustExec(t, s2, "UPDATE dl SET v = 2 WHERE k = $1", k2)

	done := make(chan error, 2)
	go func() {
		_, err := s1.Exec("UPDATE dl SET v = 1 WHERE k = $1", k2)
		done <- err
	}()
	go func() {
		_, err := s2.Exec("UPDATE dl SET v = 2 WHERE k = $1", k1)
		done <- err
	}()
	failures := 0
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				failures++
			}
		case <-time.After(10 * time.Second):
			t.Fatal("distributed deadlock was not detected")
		}
	}
	if failures == 0 {
		t.Fatal("expected the deadlock detector to cancel one transaction")
	}
	s1.Exec("ROLLBACK")
	s2.Exec("ROLLBACK")
}

func TestTwoPhaseCommitRecovery(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE r2pc (k bigint PRIMARY KEY)")
	mustExec(t, s, "SELECT create_distributed_table('r2pc', 'k')")

	// Simulate a coordinator that prepared transactions on workers but
	// crashed before resolving them: create prepared transactions directly
	// on a worker using the coordinator's gid naming.
	w := c.ConnTo(1)
	defer w.Close()
	shard := c.Meta.Shards("r2pc")[0]
	nodeID, _ := c.Meta.PrimaryPlacement(shard.ID)
	w2 := c.ConnTo(nodeID - 1)
	defer w2.Close()

	gidCommit := "citus_1_999_0"
	if _, err := w2.Query("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Query(fmt.Sprintf("INSERT INTO %s (k) VALUES (424242)", shard.ShardName())); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Query(fmt.Sprintf("PREPARE TRANSACTION '%s'", gidCommit)); err != nil {
		t.Fatal(err)
	}
	gidAbort := "citus_1_999_1"
	if _, err := w2.Query("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Query(fmt.Sprintf("INSERT INTO %s (k) VALUES (434343)", shard.ShardName())); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Query(fmt.Sprintf("PREPARE TRANSACTION '%s'", gidAbort)); err != nil {
		t.Fatal(err)
	}

	// the coordinator has a commit record only for the first
	c.Coordinator().AddCommitRecordForTest(gidCommit)

	resolved := c.Coordinator().RecoverTwoPhaseCommits()
	if resolved != 2 {
		t.Fatalf("recovered %d transactions, want 2", resolved)
	}
	res := mustExec(t, s, "SELECT count(*) FROM r2pc")
	expectRows(t, res, "1") // committed one visible, aborted one gone
}

func TestDDLPropagation(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE docs (id bigint PRIMARY KEY, body text)")
	mustExec(t, s, "SELECT create_distributed_table('docs', 'id')")
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO docs (id, body) VALUES (%d, 'doc body %d')", i, i))
	}
	// distributed CREATE INDEX
	mustExec(t, s, "CREATE INDEX docs_body_idx ON docs USING gin ((body) gin_trgm_ops)")
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM docs WHERE body ILIKE '%body 7%'"), "1")

	// distributed ALTER TABLE ADD COLUMN
	mustExec(t, s, "ALTER TABLE docs ADD COLUMN extra bigint")
	mustExec(t, s, "UPDATE docs SET extra = id * 2 WHERE id = 3")
	expectRows(t, mustExec(t, s, "SELECT extra FROM docs WHERE id = 3"), "6")

	// distributed TRUNCATE
	mustExec(t, s, "TRUNCATE docs")
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM docs"), "0")

	// distributed DROP
	mustExec(t, s, "DROP TABLE docs")
	if c.Meta.IsCitusTable("docs") {
		t.Fatal("metadata survived DROP TABLE")
	}
}

func TestShardRebalancer(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE reb (k bigint PRIMARY KEY, v text)")
	mustExec(t, s, "SELECT create_distributed_table('reb', 'k')")
	for i := 0; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO reb (k, v) VALUES (%d, 'x%d')", i, i))
	}
	// force an imbalance: move every shard from node 3 to node 2
	for _, sh := range c.Meta.Shards("reb") {
		nodeID, _ := c.Meta.PrimaryPlacement(sh.ID)
		if nodeID == 3 {
			if err := c.Coordinator().MoveShardPlacement(s, sh.ID, 3, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := placementCounts(c, "reb")
	if counts[3] != 0 {
		t.Fatalf("expected all shards on node 2, got %v", counts)
	}
	// data intact after the moves
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM reb"), "100")

	// now rebalance back to even
	res := mustExec(t, s, "SELECT rebalance_table_shards()")
	moves := res.Rows[0][0].(int64)
	if moves == 0 {
		t.Fatal("rebalancer made no moves")
	}
	counts = placementCounts(c, "reb")
	if counts[2] != 4 || counts[3] != 4 {
		t.Fatalf("expected 4+4 after rebalance, got %v", counts)
	}
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM reb"), "100")
	expectRows(t, mustExec(t, s, "SELECT v FROM reb WHERE k = 42"), "x42")
}

func placementCounts(c *cluster.Cluster, table string) map[int]int {
	counts := map[int]int{}
	for _, sh := range c.Meta.Shards(table) {
		nodeID, _ := c.Meta.PrimaryPlacement(sh.ID)
		counts[nodeID]++
	}
	return counts
}

func TestMetadataSyncMXMode(t *testing.T) {
	c, err := cluster.New(cluster.Config{Workers: 2, ShardCount: 8, SyncMetadata: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	mustExec(t, s, "CREATE TABLE mx (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('mx', 'k')")
	mustExec(t, s, "INSERT INTO mx (k, v) VALUES (1, 10), (2, 20), (3, 30)")

	// a worker can coordinate distributed queries itself
	ws := c.SessionOn(1)
	expectRows(t, mustExec(t, ws, "SELECT v FROM mx WHERE k = 2"), "20")
	expectRows(t, mustExec(t, ws, "SELECT count(*) FROM mx"), "3")
	mustExec(t, ws, "UPDATE mx SET v = 99 WHERE k = 3")
	expectRows(t, mustExec(t, s, "SELECT v FROM mx WHERE k = 3"), "99")
}

func TestBroadcastAndRepartitionJoins(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE big (id bigint PRIMARY KEY, small_id bigint, v bigint)")
	mustExec(t, s, "CREATE TABLE small (id bigint PRIMARY KEY, label text)")
	mustExec(t, s, "SELECT create_distributed_table('big', 'id')")
	mustExec(t, s, "SELECT create_distributed_table('small', 'id', colocate_with := 'none')")

	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO small (id, label) VALUES (%d, 'label%d')", i, i))
	}
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO big (id, small_id, v) VALUES (%d, %d, %d)", i, i%10, i))
	}

	// a non-co-located join: joined on big.small_id = small.id (not both
	// distribution columns) — the join-order planner must move data
	res := mustExec(t, s, `SELECT s.label, count(*) FROM big b JOIN small s ON b.small_id = s.id GROUP BY s.label ORDER BY s.label`)
	if len(res.Rows) != 10 {
		t.Fatalf("want 10 labels, got %d: %v", len(res.Rows), res.Rows)
	}
	expectRows(t, mustExec(t, s,
		"SELECT count(*) FROM big b JOIN small s ON b.small_id = s.id WHERE s.label = 'label3'"), "20")

	// explain names the strategy
	res = mustExec(t, s, "EXPLAIN SELECT count(*) FROM big b JOIN small s ON b.small_id = s.id")
	txt := rowsText(res)
	if !strings.Contains(txt, "broadcast") && !strings.Contains(txt, "re-partition") {
		t.Fatalf("expected join-order strategy in plan:\n%s", txt)
	}
}

func TestStoredProcedureDelegation(t *testing.T) {
	c := newCluster(t, 2)
	// register the procedure on every node (as an extension would)
	for _, eng := range c.Engines {
		eng.RegisterProcedure("add_payment", func(s *engine.Session, args []types.Datum) error {
			_, err := s.Exec("UPDATE wh SET total = total + $1 WHERE w_id = $2", args[1], args[0])
			return err
		})
	}
	s := c.Session()
	mustExec(t, s, "CREATE TABLE wh (w_id bigint PRIMARY KEY, total bigint)")
	mustExec(t, s, "SELECT create_distributed_table('wh', 'w_id')")
	mustExec(t, s, "INSERT INTO wh (w_id, total) VALUES (1, 0), (2, 0)")
	// metadata must be synced for workers to run distributed procedures
	mustExec(t, s, "SELECT start_metadata_sync_to_node('worker1')")
	mustExec(t, s, "SELECT start_metadata_sync_to_node('worker2')")
	for _, node := range c.Nodes {
		node.RegisterDistributedProcedure("add_payment", citus.DistProcedure{
			ArgIndex: 0, ColocatedWith: "wh",
		})
	}
	mustExec(t, s, "CALL add_payment(1, 50)")
	mustExec(t, s, "CALL add_payment(2, 70)")
	expectRows(t, mustExec(t, s, "SELECT total FROM wh WHERE w_id = 1"), "50")
	expectRows(t, mustExec(t, s, "SELECT total FROM wh WHERE w_id = 2"), "70")
}

func TestSingleNodeCluster(t *testing.T) {
	// "the smallest possible Citus cluster is a single server" (§3.2)
	c := newCluster(t, 0)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE solo (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('solo', 'k')")
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO solo (k, v) VALUES (%d, %d)", i, i))
	}
	expectRows(t, mustExec(t, s, "SELECT count(*), sum(v) FROM solo"), "30|435")
	expectRows(t, mustExec(t, s, "SELECT v FROM solo WHERE k = 11"), "11")
}

func TestClusterOverTCP(t *testing.T) {
	c, err := cluster.New(cluster.Config{Workers: 2, ShardCount: 4, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	mustExec(t, s, "CREATE TABLE tcp_t (k bigint PRIMARY KEY, v text)")
	mustExec(t, s, "SELECT create_distributed_table('tcp_t', 'k')")
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO tcp_t (k, v) VALUES (%d, 'v%d')", i, i))
	}
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM tcp_t"), "20")
	expectRows(t, mustExec(t, s, "SELECT v FROM tcp_t WHERE k = 13"), "v13")

	// a real client connection over TCP
	conn := c.Conn()
	defer conn.Close()
	res, err := conn.Query("SELECT v FROM tcp_t WHERE k = 7")
	if err != nil {
		t.Fatal(err)
	}
	if types.Format(res.Rows[0][0]) != "v7" {
		t.Fatalf("bad result over TCP: %v", res.Rows)
	}
}

func TestConsistentRestorePoint(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE rp (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('rp', 'k')")
	mustExec(t, s, "INSERT INTO rp (k, v) VALUES (1, 1), (2, 2), (3, 3)")

	mustExec(t, s, "SELECT create_restore_point('before_disaster')")
	mustExec(t, s, "UPDATE rp SET v = v * 100")

	// every node has the restore point in its WAL
	for _, eng := range c.Engines {
		if _, err := eng.WAL.FindRestorePoint("before_disaster"); err != nil {
			t.Fatalf("node %s: %v", eng.Name, err)
		}
	}
}
