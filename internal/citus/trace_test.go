package citus_test

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"citusgo/internal/citus"
	"citusgo/internal/cluster"
	"citusgo/internal/engine"
	"citusgo/internal/trace"
)

// newTracedCluster builds a 2-worker cluster with always-on tracing (the
// cluster default) and a distributed kv table loaded with a few rows.
func newTracedCluster(t *testing.T) (*cluster.Cluster, *engine.Session) {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Workers:               2,
		ShardCount:            8,
		LocalDeadlockInterval: 20 * time.Millisecond,
		Citus:                 citus.Config{DeadlockInterval: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE tkv (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('tkv', 'k')")
	for i := 0; i < 32; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO tkv (k, v) VALUES (%d, %d)", i, i*10))
	}
	return c, s
}

// collectKinds buckets spans of one trace by kind.
func collectKinds(spans []trace.Span) map[string][]trace.Span {
	byKind := make(map[string][]trace.Span)
	for _, sp := range spans {
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
	}
	return byKind
}

// TestDistributedTraceReassembly runs a multi-shard query through the
// public API and checks that citus_trace() reassembles one coherent trace:
// a coordinator root span, one executor task span per shard, and
// worker-side engine spans, all under the same trace id.
func TestDistributedTraceReassembly(t *testing.T) {
	c, s := newTracedCluster(t)

	mustExec(t, s, "SELECT count(*), sum(v) FROM tkv")
	traceID := s.LastTraceID
	if traceID == 0 {
		t.Fatal("no trace id recorded for the multi-shard query")
	}

	// the UDF view of the trace
	res := mustExec(t, s, fmt.Sprintf("SELECT citus_trace(%d)", traceID))
	if len(res.Columns) == 0 || res.Columns[0] != "trace_id" {
		t.Fatalf("citus_trace columns: %v", res.Columns)
	}
	if len(res.Rows) == 0 {
		t.Fatal("citus_trace returned no spans")
	}
	for _, r := range res.Rows {
		if r[0].(int64) != int64(traceID) {
			t.Fatalf("span from wrong trace: %v", r)
		}
	}

	// the programmatic view, with structural assertions
	spans := c.Coordinator().CollectTrace(traceID)
	if len(spans) != len(res.Rows) {
		t.Fatalf("CollectTrace (%d) and citus_trace (%d) disagree", len(spans), len(res.Rows))
	}
	byKind := collectKinds(spans)
	if got := len(byKind["statement"]); got != 1 {
		t.Fatalf("want exactly 1 root span, got %d", got)
	}
	root := byKind["statement"][0]
	if root.Node != "coordinator" || root.ParentID != 0 {
		t.Fatalf("bad root span: %+v", root)
	}
	if got := len(byKind["task"]); got != 8 {
		t.Fatalf("want one task span per shard (8), got %d", got)
	}
	groups := map[string]bool{}
	for _, task := range byKind["task"] {
		if task.ParentID != root.SpanID {
			t.Fatalf("task span not parented at the root: %+v", task)
		}
		if task.Node != "coordinator" {
			t.Fatalf("task span recorded off-coordinator: %+v", task)
		}
		groups[task.Attrs.Get("shard_group")] = true
	}
	if len(groups) != 8 {
		t.Fatalf("task spans cover %d shard groups, want 8", len(groups))
	}
	workerExec := 0
	taskIDs := map[uint64]bool{}
	for _, task := range byKind["task"] {
		taskIDs[task.SpanID] = true
	}
	for _, sp := range byKind["execute"] {
		if strings.HasPrefix(sp.Node, "worker") && taskIDs[sp.ParentID] {
			workerExec++
		}
	}
	if workerExec != 8 {
		t.Fatalf("want 8 worker execute spans nested under tasks, got %d", workerExec)
	}
}

// TestTraceConcurrentStress is the -race stress test: concurrent traced
// sessions against 2 workers, then per-trace structural checks and the
// bounded-memory assertion on every node's span ring.
func TestTraceConcurrentStress(t *testing.T) {
	c, _ := newTracedCluster(t)

	const goroutines = 8
	const multiShardRuns = 4
	const routerRuns = 12
	traceIDs := make([][]uint64, goroutines) // per goroutine: multi-shard trace ids
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := c.Session()
			for i := 0; i < routerRuns; i++ {
				if _, err := s.Exec("SELECT v FROM tkv WHERE k = $1", int64(i%32)); err != nil {
					errCh <- err
					return
				}
			}
			for i := 0; i < multiShardRuns; i++ {
				if _, err := s.Exec("SELECT count(*) FROM tkv"); err != nil {
					errCh <- err
					return
				}
				traceIDs[g] = append(traceIDs[g], s.LastTraceID)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	coord := c.Coordinator()
	for g := range traceIDs {
		for _, id := range traceIDs[g] {
			byKind := collectKinds(coord.CollectTrace(id))
			if got := len(byKind["statement"]); got != 1 {
				t.Fatalf("trace %d: want exactly 1 root span, got %d", id, got)
			}
			groups := map[string]bool{}
			for _, task := range byKind["task"] {
				groups[task.Attrs.Get("shard_group")] = true
			}
			if len(byKind["task"]) < 8 || len(groups) != 8 {
				t.Fatalf("trace %d: %d task spans over %d shard groups, want ≥8 over 8",
					id, len(byKind["task"]), len(groups))
			}
		}
	}
	// bounded memory: no node's ring ever holds more than its capacity
	for _, eng := range c.Engines {
		if n, capN := eng.Tracer.SpanCount(), eng.Tracer.RingCap(); n > capN {
			t.Fatalf("node %s ring overflow: %d spans > cap %d", eng.Name, n, capN)
		}
	}
}

// timingRE normalizes measured durations so EXPLAIN ANALYZE output is
// comparable across runs.
var timingRE = regexp.MustCompile(`\d+\.\d+ ms`)

func normalizedLines(t *testing.T, res *engine.Result) string {
	t.Helper()
	var lines []string
	for _, r := range res.Rows {
		lines = append(lines, timingRE.ReplaceAllString(r[0].(string), "X ms"))
	}
	return strings.Join(lines, "\n")
}

// TestDistributedExplainAnalyzeRouter pins the EXPLAIN ANALYZE output of a
// router query: the first execution analyzes and installs the plan
// (plancache miss, worker-side parse), repeats hit the cache and skip the
// parse.
func TestDistributedExplainAnalyzeRouter(t *testing.T) {
	_, s := newTracedCluster(t)

	missRes := mustExec(t, s, "EXPLAIN ANALYZE SELECT v FROM tkv WHERE k = 1")
	miss := normalizedLines(t, missRes)
	hitRes := mustExec(t, s, "EXPLAIN ANALYZE SELECT v FROM tkv WHERE k = 1")
	hit := normalizedLines(t, hitRes)

	if !strings.Contains(miss, "plancache miss") {
		t.Fatalf("first execution should be a plancache miss:\n%s", miss)
	}
	if !strings.Contains(hit, "plancache hit") {
		t.Fatalf("second execution should be a plancache hit:\n%s", hit)
	}
	wantHit := strings.TrimSpace(`
Custom Scan (Citus Router)
  Task Count: 1 (cached plan, shard group 0 on node 2)
Distributed Tasks (1):
  Task (shard group 1048576, node 2, plancache hit): rows=1, attempt 1, X ms
    execute on worker1: X ms
      plan on worker1: X ms
Actual Rows: 1
Execution Time: X ms`)
	if hit != wantHit {
		t.Fatalf("router EXPLAIN ANALYZE (hit) mismatch:\ngot:\n%s\nwant:\n%s", hit, wantHit)
	}
}

// TestDistributedExplainAnalyzeMultiShard pins the EXPLAIN ANALYZE output
// of a fan-out aggregate: one timed task line per shard with the worker
// spans nested beneath.
func TestDistributedExplainAnalyzeMultiShard(t *testing.T) {
	_, s := newTracedCluster(t)

	res := mustExec(t, s, "EXPLAIN ANALYZE SELECT count(*) FROM tkv")
	got := normalizedLines(t, res)
	if !strings.Contains(got, "Distributed Tasks (8):") {
		t.Fatalf("want 8 distributed tasks:\n%s", got)
	}
	taskLines := 0
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Task (shard group ") {
			taskLines++
			if !strings.Contains(line, "plancache miss") {
				t.Fatalf("fan-out tasks bypass the router plan cache, line %q", line)
			}
		}
	}
	if taskLines != 8 {
		t.Fatalf("want 8 task lines, got %d:\n%s", taskLines, got)
	}
	if !strings.Contains(got, "execute on worker1: X ms") ||
		!strings.Contains(got, "execute on worker2: X ms") {
		t.Fatalf("worker execute spans missing:\n%s", got)
	}
	if !strings.Contains(got, "Actual Rows: 1") {
		t.Fatalf("merged aggregate should produce one row:\n%s", got)
	}
}

// TestStatActivityJoinsTrace joins citus_stat_activity with citus_trace:
// an open distributed transaction advertises the trace id and span kind of
// its last traced statement, and feeding that id to citus_trace yields the
// statement's spans.
func TestStatActivityJoinsTrace(t *testing.T) {
	_, s := newTracedCluster(t)

	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO tkv (k, v) VALUES (100, 1000)")
	traceID := s.LastTraceID
	if traceID == 0 {
		t.Fatal("traced INSERT recorded no trace id")
	}

	// another session observes the open transaction with its trace context
	s2 := mustExec(t, s.Eng.NewSession(), "SELECT citus_stat_activity()")
	idx := map[string]int{}
	for i, col := range s2.Columns {
		idx[col] = i
	}
	for _, col := range []string{"trace_id", "span_kind"} {
		if _, ok := idx[col]; !ok {
			t.Fatalf("citus_stat_activity misses column %s: %v", col, s2.Columns)
		}
	}
	found := false
	for _, r := range s2.Rows {
		if r[idx["trace_id"]].(int64) == int64(traceID) && r[idx["state"]].(string) == "active" {
			found = true
			if kind := r[idx["span_kind"]].(string); kind == "" {
				t.Fatalf("active transaction advertises no span kind: %v", r)
			}
		}
	}
	if !found {
		t.Fatalf("no active transaction advertises trace %d:\n%s", traceID, rowsText(s2))
	}

	// the advertised id resolves to the statement's spans
	spans := mustExec(t, s.Eng.NewSession(), fmt.Sprintf("SELECT citus_trace(%d)", traceID))
	if len(spans.Rows) == 0 {
		t.Fatal("advertised trace id resolves to no spans")
	}
	mustExec(t, s, "COMMIT")
}
