package citus

import (
	"fmt"
	"sort"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/fault"
	"citusgo/internal/types"
	"citusgo/internal/wal"
	"citusgo/internal/wire"
)

// RebalanceTableShards implements the shard rebalancer (§3.4): it moves
// shards (together with their co-located shards) between worker nodes until
// every worker holds an even number of shards. Returns the number of shard
// moves performed.
//
// Shard moves reproduce the paper's logical-replication flow: a snapshot of
// the shard is copied while it keeps serving reads and writes, then writes
// are briefly blocked while the WAL delta since the snapshot is replayed on
// the target ("the last few steps typically only take a few seconds, hence
// there is minimal write downtime").
func (n *Node) RebalanceTableShards(s *engine.Session) (int, error) {
	workers := n.Meta.WorkerNodes()
	if len(workers) < 2 {
		return 0, nil
	}
	moves := 0
	for {
		move := n.planNextMove(workers)
		if move == nil {
			return moves, nil
		}
		if err := n.MoveShardPlacement(s, move.shardID, move.from, move.to); err != nil {
			return moves, err
		}
		moves++
	}
}

type shardMove struct {
	shardID int64
	from    int
	to      int
}

// planNextMove finds the most imbalanced pair of workers and picks a shard
// to move (the default "even number of shards" policy; custom cost and
// capacity policies are future work, as in the paper's reference [7]).
func (n *Node) planNextMove(workers []*metadata.Node) *shardMove {
	counts := make(map[int]int)
	shardOn := make(map[int][]int64)
	for _, w := range workers {
		counts[w.ID] = 0
	}
	for _, dt := range n.Meta.Tables() {
		if dt.Type != metadata.DistributedTable {
			continue
		}
		for _, sh := range n.Meta.Shards(dt.Name) {
			nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
			if err != nil {
				continue
			}
			counts[nodeID]++
			shardOn[nodeID] = append(shardOn[nodeID], sh.ID)
		}
	}
	ids := make([]int, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	maxNode, minNode := -1, -1
	for _, id := range ids {
		if maxNode == -1 || counts[id] > counts[maxNode] {
			maxNode = id
		}
		if minNode == -1 || counts[id] < counts[minNode] {
			minNode = id
		}
	}
	if maxNode == -1 || counts[maxNode]-counts[minNode] <= 1 {
		return nil
	}
	shards := shardOn[maxNode]
	if len(shards) == 0 {
		return nil
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] })
	return &shardMove{shardID: shards[0], from: maxNode, to: minNode}
}

// MoveShardPlacement moves one shard (and its co-located shards) from one
// node to another.
func (n *Node) MoveShardPlacement(s *engine.Session, shardID int64, from, to int) error {
	sh, ok := n.Meta.ShardByID(shardID)
	if !ok {
		return fmt.Errorf("shard %d does not exist", shardID)
	}
	dt, ok := n.Meta.Table(sh.Table)
	if !ok {
		return fmt.Errorf("shard %d has no distributed table", shardID)
	}
	// move all co-located shards with the same index together, so joins
	// and foreign keys on the distribution column stay local
	group := []*metadata.Shard{sh}
	for _, other := range n.Meta.Tables() {
		if other.Name == dt.Name || other.Type != metadata.DistributedTable ||
			other.ColocationID != dt.ColocationID {
			continue
		}
		shards := n.Meta.Shards(other.Name)
		if sh.Index < len(shards) {
			group = append(group, shards[sh.Index])
		}
	}
	for _, g := range group {
		if err := n.moveOneShard(s, g, dt.ColocationID, from, to); err != nil {
			return err
		}
	}
	return nil
}

// moveOneShard runs the logical-replication move flow for one shard. Every
// stage evaluates the rebalance.move fault point (keyed by stage name) so
// chaos tests can interrupt a move at any seam; an interrupted move leaves
// the placement metadata untouched (the flip in stage 3 is the commit
// point) and at worst an orphan target table, which the next attempt
// clears before re-creating the shard — so failed moves are retryable.
func (n *Node) moveOneShard(s *engine.Session, sh *metadata.Shard, colocationID, from, to int) error {
	dt, _ := n.Meta.Table(sh.Table)
	ct, indexes, err := n.schemaStatements(sh.Table)
	if err != nil {
		return err
	}
	_ = dt
	shardName := sh.ShardName()
	// 1. create the target shard table, dropping any orphan left behind by
	// a previously interrupted move (the target never holds a live
	// placement at this point — the metadata still routes to the source)
	if err := fault.CheckKey(fault.PointRebalanceMove, "create_shard"); err != nil {
		return fmt.Errorf("moving shard %d: %w", sh.ID, err)
	}
	var cleanErr error
	n.withNodeConn(to, func(c *wire.Conn) error {
		_, cleanErr = c.Query("DROP TABLE IF EXISTS " + shardName)
		return cleanErr
	})
	if cleanErr != nil {
		return cleanErr
	}
	if err := n.createShardOnNode(s, to, sh, ct, indexes); err != nil {
		return err
	}

	// 2. snapshot copy while the source keeps serving traffic; remember
	// the WAL position first so the delta can be replayed
	if err := fault.CheckKey(fault.PointRebalanceMove, "snapshot_copy"); err != nil {
		return fmt.Errorf("moving shard %d: %w", sh.ID, err)
	}
	walPos, err := n.remoteWALPosition(from)
	if err != nil {
		return err
	}
	if err := n.copyShardRows(from, to, shardName); err != nil {
		return err
	}

	// 3. block writes briefly, replay the WAL delta, flip the metadata
	release := n.fence(metadata.ShardGroupID(colocationID, sh.Index))
	defer release()
	if err := fault.CheckKey(fault.PointRebalanceMove, "catchup"); err != nil {
		return fmt.Errorf("moving shard %d: %w", sh.ID, err)
	}
	if err := n.replayShardDelta(from, to, shardName, walPos); err != nil {
		return err
	}
	if err := fault.CheckKey(fault.PointRebalanceMove, "metadata_flip"); err != nil {
		return fmt.Errorf("moving shard %d: %w", sh.ID, err)
	}
	if err := n.Meta.MovePlacement(sh.ID, from, to); err != nil {
		return err
	}
	// 4. drop the source shard (the move is already durable in the
	// metadata: a failure here strands an orphan source table but queries
	// route to the new placement)
	if err := fault.CheckKey(fault.PointRebalanceMove, "drop_source"); err != nil {
		return fmt.Errorf("moving shard %d: %w", sh.ID, err)
	}
	var derr error
	n.withNodeConn(from, func(c *wire.Conn) error {
		_, derr = c.Query("DROP TABLE IF EXISTS " + shardName)
		return derr
	})
	return derr
}

// remoteWALPosition reads a node's current WAL length. For remote nodes we
// use the record count exposed through the loopback engines (the cluster
// runs in-process); a networked deployment would use a replication slot.
func (n *Node) remoteWALPosition(nodeID int) (int64, error) {
	eng, ok := n.peerEngine(nodeID)
	if !ok {
		return 0, fmt.Errorf("node %d engine is not reachable for replication", nodeID)
	}
	return int64(eng.WAL.Len()), nil
}

// RegisterPeerEngine exposes a peer node's engine for shard-move
// replication (the in-process equivalent of a logical replication slot);
// the cluster orchestrator wires it.
func (n *Node) RegisterPeerEngine(id int, e *engine.Engine) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.peers == nil {
		n.peers = make(map[int]*engine.Engine)
	}
	n.peers[id] = e
}

func (n *Node) peerEngine(nodeID int) (*engine.Engine, bool) {
	if nodeID == n.ID {
		return n.Eng, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.peers[nodeID]
	return e, ok
}

// copyShardRows streams the current contents of a shard to the target.
func (n *Node) copyShardRows(from, to int, shardName string) error {
	var rows []types.Row
	var cols []string
	var qerr error
	n.withNodeConn(from, func(c *wire.Conn) error {
		var res *engine.Result
		res, qerr = c.Query("SELECT * FROM " + shardName)
		if qerr == nil {
			rows, cols = res.Rows, res.Columns
		}
		return qerr
	})
	if qerr != nil {
		return qerr
	}
	if len(rows) == 0 {
		return nil
	}
	var cerr error
	n.withNodeConn(to, func(c *wire.Conn) error {
		_, cerr = c.Copy(shardName, cols, rows)
		return cerr
	})
	return cerr
}

// replayShardDelta applies committed WAL changes to the shard since pos —
// the logical-replication catchup step.
func (n *Node) replayShardDelta(from, to int, shardName string, pos int64) error {
	src, ok := n.peerEngine(from)
	if !ok {
		return fmt.Errorf("node %d engine is not reachable for replication", from)
	}
	recs := src.WAL.Records()
	var deltaIns, deltaDel []types.Row
	for _, r := range recs {
		if r.LSN <= pos || r.Table != shardName {
			continue
		}
		switch r.Type {
		case wal.RecInsert:
			if committedInWAL(recs, r.XID) {
				deltaIns = append(deltaIns, r.Row)
			}
		case wal.RecDelete:
			if committedInWAL(recs, r.XID) {
				deltaDel = append(deltaDel, r.Row)
			}
		}
	}
	if len(deltaIns) == 0 && len(deltaDel) == 0 {
		return nil
	}
	var rerr error
	n.withNodeConn(to, func(c *wire.Conn) error {
		for _, row := range deltaDel {
			// delete by full-row image
			_, rerr = c.Query(deleteByImageSQL(shardName, row, to, n))
			if rerr != nil {
				return rerr
			}
		}
		if len(deltaIns) > 0 {
			var cols []string
			if tbl, ok := n.Eng.Catalog.Get(shardTableBase(shardName)); ok {
				cols = tbl.ColumnNames()
			}
			_, rerr = c.Copy(shardName, cols, deltaIns)
		}
		return rerr
	})
	return rerr
}

// committedInWAL reports whether a transaction has a commit record.
func committedInWAL(recs []wal.Record, xid uint64) bool {
	for _, r := range recs {
		if r.XID != xid {
			continue
		}
		switch r.Type {
		case wal.RecCommit, wal.RecCommitPrepared:
			return true
		}
	}
	return false
}

// shardTableBase strips the shard id suffix to find the logical table name.
func shardTableBase(shardName string) string {
	for i := len(shardName) - 1; i >= 0; i-- {
		if shardName[i] == '_' {
			return shardName[:i]
		}
	}
	return shardName
}

// deleteByImageSQL builds a DELETE matching a full row image.
func deleteByImageSQL(shardName string, row types.Row, nodeID int, n *Node) string {
	tbl, ok := n.Eng.Catalog.Get(shardTableBase(shardName))
	if !ok {
		return "DELETE FROM " + shardName + " WHERE false"
	}
	q := "DELETE FROM " + shardName + " WHERE "
	for i, c := range tbl.Columns {
		if i > 0 {
			q += " AND "
		}
		if i < len(row) && row[i] != nil {
			q += c.Name + " = " + types.QuoteLiteral(row[i])
		} else {
			q += c.Name + " IS NULL"
		}
	}
	return q
}
