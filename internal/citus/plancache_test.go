package citus_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"citusgo/internal/citus"
	"citusgo/internal/cluster"
	"citusgo/internal/engine"
)

// udfStats runs a name/value introspection UDF and returns it as a map.
func udfStats(t *testing.T, s *engine.Session, q string) map[string]int64 {
	t.Helper()
	res := mustExec(t, s, q)
	if len(res.Columns) != 2 || res.Columns[0] != "name" || res.Columns[1] != "value" {
		t.Fatalf("%s columns = %v", q, res.Columns)
	}
	out := make(map[string]int64, len(res.Rows))
	for _, row := range res.Rows {
		out[row[0].(string)] = row[1].(int64)
	}
	return out
}

// clusterNewNoCache boots a cluster with every plan-caching layer disabled.
func clusterNewNoCache() (*cluster.Cluster, error) {
	return cluster.New(cluster.Config{
		Workers:    2,
		ShardCount: 8,
		Citus:      citus.Config{DisablePlanCache: true, DeadlockInterval: 50 * time.Millisecond},
	})
}

// TestPlanCacheRouterBasics: repeated router statements are served from the
// coordinator plan cache, and both spellings (literal and parameterized)
// share one entry.
func TestPlanCacheRouterBasics(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE pcb (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('pcb', 'k')")
	for i := 0; i < 8; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO pcb (k, v) VALUES (%d, %d)", i, i*10))
	}
	// literal spelling, then parameterized spelling of the same shape
	for i := 0; i < 8; i++ {
		res := mustExec(t, s, fmt.Sprintf("SELECT v FROM pcb WHERE k = %d", i))
		if len(res.Rows) != 1 || res.Rows[0][0].(int64) != int64(i*10) {
			t.Fatalf("k=%d literal: rows = %v", i, res.Rows)
		}
	}
	for i := 0; i < 8; i++ {
		res := mustExec(t, s, "SELECT v FROM pcb WHERE k = $1", int64(i))
		if len(res.Rows) != 1 || res.Rows[0][0].(int64) != int64(i*10) {
			t.Fatalf("k=%d param: rows = %v", i, res.Rows)
		}
	}
	stats := udfStats(t, c.Session(), "SELECT citus_plancache_stats()")
	if stats["hits"] == 0 {
		t.Fatalf("no plan-cache hits after repeated router queries: %v", stats)
	}
	if stats["entries"] == 0 {
		t.Fatalf("no plan-cache entries installed: %v", stats)
	}
	// both spellings must have landed on ONE entry (plus any others): the
	// per-entry shard-group row exists for the normalized key
	found := false
	for k := range stats {
		if strings.HasPrefix(k, "shard_groups[") && strings.Contains(k, "pcb") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shard_groups[...] row for pcb: %v", stats)
	}

	// router UPDATE and DELETE go through the cache too
	mustExec(t, s, "UPDATE pcb SET v = v + 1 WHERE k = 3")
	res := mustExec(t, s, "SELECT v FROM pcb WHERE k = $1", int64(3))
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 31 {
		t.Fatalf("after UPDATE: rows = %v", res.Rows)
	}
	mustExec(t, s, "DELETE FROM pcb WHERE k = 3")
	res = mustExec(t, s, "SELECT v FROM pcb WHERE k = $1", int64(3))
	if len(res.Rows) != 0 {
		t.Fatalf("after DELETE: rows = %v", res.Rows)
	}
}

// TestPlanCacheStressInvalidation drives concurrent router reads and writes
// through the plan cache while a DDL loop keeps bumping the metadata and
// schema versions. Correctness condition: no stale plan ever executes — each
// writer owns one key and must read back exactly the number of increments it
// has applied, which fails if a cached plan routes to the wrong shard or a
// worker executes against a stale prepared statement. Run under -race.
func TestPlanCacheStressInvalidation(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE pcs (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('pcs', 'k')")
	// separate colocated table for the DDL loop: CREATE INDEX bumps the
	// metadata + schema versions without racing index backfill against the
	// writers' UPDATEs
	mustExec(t, s, "CREATE TABLE pcs_ddl (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('pcs_ddl', 'k')")
	const writers = 8
	for i := 0; i < writers; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO pcs (k, v) VALUES (%d, 0)", i))
	}

	// writers run at least minIters and keep going until the DDL loop has
	// finished, guaranteeing cached plans are in active use across every
	// metadata version bump
	const minIters = 60
	const maxIters = 5000
	var ddlDone atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, writers+1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(key int) {
			defer wg.Done()
			sess := c.Session()
			for i := 1; i <= maxIters; i++ {
				// literal spelling exercises the lift-to-parameter path
				if _, err := sess.Exec(fmt.Sprintf("UPDATE pcs SET v = v + 1 WHERE k = %d", key)); err != nil {
					errCh <- fmt.Errorf("writer %d iter %d update: %w", key, i, err)
					return
				}
				res, err := sess.Exec("SELECT v FROM pcs WHERE k = $1", int64(key))
				if err != nil {
					errCh <- fmt.Errorf("writer %d iter %d select: %w", key, i, err)
					return
				}
				if len(res.Rows) != 1 {
					errCh <- fmt.Errorf("writer %d iter %d: %d rows (stale plan routed to wrong shard?)", key, i, len(res.Rows))
					return
				}
				if got := res.Rows[0][0].(int64); got != int64(i) {
					errCh <- fmt.Errorf("writer %d iter %d: read v=%d, want %d (stale plan executed)", key, i, got, i)
					return
				}
				if i >= minIters && ddlDone.Load() {
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer ddlDone.Store(true)
		sess := c.Session()
		for i := 0; i < 12; i++ {
			if _, err := sess.Exec(fmt.Sprintf("CREATE INDEX pcs_stress_%d ON pcs_ddl (v)", i)); err != nil {
				errCh <- fmt.Errorf("ddl %d: %w", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	stats := udfStats(t, c.Session(), "SELECT citus_plancache_stats()")
	if stats["hits"] == 0 {
		t.Fatalf("stress run produced no plan-cache hits: %v", stats)
	}
	if stats["invalidations"] == 0 {
		t.Fatalf("DDL loop produced no plan-cache invalidations: %v", stats)
	}
}

// TestPlanCacheDisabled: with DisablePlanCache the workload still answers
// correctly and the cache stays empty.
func TestPlanCacheDisabled(t *testing.T) {
	c, err := clusterNewNoCache()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE pcd (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('pcd', 'k')")
	mustExec(t, s, "INSERT INTO pcd (k, v) VALUES (1, 10)")
	for i := 0; i < 5; i++ {
		res := mustExec(t, s, "SELECT v FROM pcd WHERE k = $1", int64(1))
		if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 10 {
			t.Fatalf("rows = %v", res.Rows)
		}
	}
	stats := udfStats(t, s, "SELECT citus_plancache_stats()")
	if stats["entries"] != 0 || stats["hits"] != 0 {
		t.Fatalf("disabled cache has activity: %v", stats)
	}
}
