package citus

import (
	"fmt"
	"strings"
	"testing"

	"citusgo/internal/sql"
)

func parseOne(t *testing.T, q string) sql.Statement {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return stmt
}

// The literal and parameterized spellings of a router statement must share
// one cache key, with the lifted literals appended after the caller's
// parameters.
func TestNormalizeUnifiesLiteralAndParamForms(t *testing.T) {
	lit := parseOne(t, "SELECT v FROM t WHERE k = 42")
	par := parseOne(t, "SELECT v FROM t WHERE k = $1")

	litKey, litLifted, ok := normalizeStatement(lit, 0)
	if !ok {
		t.Fatal("literal form not normalizable")
	}
	parKey, parLifted, ok := normalizeStatement(par, 1)
	if !ok {
		t.Fatal("param form not normalizable")
	}
	if litKey != parKey {
		t.Fatalf("keys differ:\n  literal: %s\n  param:   %s", litKey, parKey)
	}
	if len(litLifted) != 1 || fmt.Sprint(litLifted[0]) != "42" {
		t.Fatalf("literal form lifted = %v, want [42]", litLifted)
	}
	if len(parLifted) != 0 {
		t.Fatalf("param form lifted = %v, want none", parLifted)
	}
}

// Normalization mutates the AST in place and must restore it exactly.
func TestNormalizeRestoresStatement(t *testing.T) {
	for _, q := range []string{
		"SELECT v FROM t WHERE k = 42",
		"SELECT v FROM t WHERE k = 42 AND v > 7",
		"UPDATE t SET v = v + 1 WHERE k = 3",
		"UPDATE t SET v = 9, w = $1 WHERE k = 3",
		"DELETE FROM t WHERE k = 5",
	} {
		stmt := parseOne(t, q)
		before := stmt.String()
		if _, _, ok := normalizeStatement(stmt, 1); !ok {
			t.Fatalf("%q: not normalizable", q)
		}
		if after := stmt.String(); after != before {
			t.Fatalf("%q: statement mutated by normalization:\n  before: %s\n  after:  %s", q, before, after)
		}
	}
}

// UPDATE lifts SET values (including one arithmetic level, the pgbench
// `v = v + 1` shape) and WHERE comparisons, in statement order, numbering
// synthetic parameters after the caller's.
func TestNormalizeUpdateLiftsSetAndWhere(t *testing.T) {
	stmt := parseOne(t, "UPDATE t SET v = v + 7 WHERE k = 3")
	key, lifted, ok := normalizeStatement(stmt, 2)
	if !ok {
		t.Fatal("not normalizable")
	}
	if len(lifted) != 2 || fmt.Sprint(lifted[0]) != "7" || fmt.Sprint(lifted[1]) != "3" {
		t.Fatalf("lifted = %v, want [7 3]", lifted)
	}
	// caller holds $1/$2, so the synthetic parameters are $3 and $4
	if !strings.Contains(key, "$3") || !strings.Contains(key, "$4") {
		t.Fatalf("key %q missing synthetic params $3/$4", key)
	}
	if strings.Contains(key, "7") || strings.ContainsAny(key, "3") && strings.Contains(key, "= 3") {
		t.Fatalf("key %q still contains lifted literals", key)
	}
}

// Shapes the fast path cannot serve must be rejected before any lifting.
func TestNormalizeRejectsIneligibleShapes(t *testing.T) {
	for _, q := range []string{
		"SELECT count(*) FROM a JOIN b ON a.k = b.k",
		"SELECT v FROM a, b WHERE a.k = 1",
		"INSERT INTO t (k, v) VALUES (1, 2)",
		"CREATE TABLE x (k int)",
	} {
		stmt := parseOne(t, q)
		if key, _, ok := normalizeStatement(stmt, 0); ok {
			t.Fatalf("%q: unexpectedly normalized to %q", q, key)
		}
	}
}

// Distinct constants outside the lifted positions must stay in the key:
// they change the plan, so they must not share a cache entry.
func TestNormalizeKeepsNonLiftedLiteralsDistinct(t *testing.T) {
	a := parseOne(t, "SELECT v FROM t WHERE k = 1 ORDER BY v LIMIT 5")
	b := parseOne(t, "SELECT v FROM t WHERE k = 1 ORDER BY v LIMIT 9")
	ka, _, okA := normalizeStatement(a, 0)
	kb, _, okB := normalizeStatement(b, 0)
	if !okA || !okB {
		t.Skip("parser does not support LIMIT on this shape")
	}
	if ka == kb {
		t.Fatalf("different LIMITs share key %q", ka)
	}
}
