package citus

import (
	"fmt"
	"sort"
	"strings"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/expr"
	"citusgo/internal/obs"
	"citusgo/internal/sql"
	"citusgo/internal/types"
	"citusgo/internal/wire"
)

// Merge-step observability: ablation A5's TopN variant asserts the
// pushdown cuts citus_merge_rows_total to O(workers × k) while
// metTopNPushdowns confirms the plan actually routed through it.
var (
	metCitusMergeRows = obs.Default().Counter("citus_merge_rows_total",
		"worker result rows collected into coordinator merge steps").With()
	metTopNPushdowns = obs.Default().Counter("citus_topn_pushdowns_total",
		"distributed grouped plans that shipped ORDER BY/LIMIT to the workers").With()
)

// distPlan is the distributed query plan a planner hook returns — the
// equivalent of the CustomScan node Citus injects into the PostgreSQL plan
// (§3.5): a set of tasks, optionally preceded by subplan phases (broadcast /
// repartition data movement) and followed by a coordinator-side merge query
// over the collected worker results.
type distPlan struct {
	node    *Node
	columns []string
	explain []string

	// tasks, or prepare to build them at execution time (join-order plans
	// move data first).
	tasks   []task
	prepare func(s *engine.Session, params []types.Datum) ([]task, error)

	// DML plans sum affected rows instead of returning them.
	isDML bool
	tag   string

	// merge: load task results into an intermediate result on the
	// coordinator and run the merge ("master") query over it locally.
	mergeName  string
	mergeQuery string
	mergeCols  []string

	// cleanup of intermediate results on every involved node
	cleanupPrefix string
	cleanupNodes  []int

	// reference-table writes run on every replica; report one count
	// instead of the sum
	dedupeReplicaCounts bool
}

func (p *distPlan) Columns() []string      { return p.columns }
func (p *distPlan) ExplainLines() []string { return p.explain }

func (p *distPlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	tasks := p.tasks
	if p.prepare != nil {
		var err error
		tasks, err = p.prepare(s, params)
		if err != nil {
			p.cleanup()
			return nil, err
		}
	}
	results, err := p.node.executeTasks(s, tasks)
	if err != nil {
		p.cleanup()
		return nil, err
	}
	defer p.cleanup()

	if p.isDML {
		res := &engine.Result{}
		for _, r := range results {
			if r == nil {
				continue
			}
			if p.dedupeReplicaCounts {
				if res.Affected == 0 {
					res.Affected = r.Affected
				}
			} else {
				res.Affected += r.Affected
			}
			// RETURNING rows pass through (replica writes return identical
			// rows; keep the first set only)
			if len(r.Rows) > 0 && len(r.Columns) > 0 && (!p.dedupeReplicaCounts || len(res.Rows) == 0) {
				res.Columns = r.Columns
				res.Rows = append(res.Rows, r.Rows...)
			}
		}
		res.Tag = fmt.Sprintf("%s %d", p.tag, res.Affected)
		return res, nil
	}

	if p.mergeQuery != "" {
		var rows []types.Row
		cols := p.mergeCols
		for _, r := range results {
			if r != nil {
				if cols == nil {
					cols = r.Columns
				}
				rows = append(rows, r.Rows...)
			}
		}
		metCitusMergeRows.Add(int64(len(rows)))
		p.node.Eng.RegisterIntermediateResult(p.mergeName, &engine.IntermediateResult{
			Columns: cols,
			Rows:    rows,
		})
		defer p.node.Eng.DropIntermediateResults(p.mergeName)
		res, err := s.Exec(p.mergeQuery, params...)
		if err != nil {
			return nil, fmt.Errorf("merge step failed: %w", err)
		}
		if p.columns != nil {
			res.Columns = p.columns
		}
		res.Tag = ""
		return res, nil
	}

	res := &engine.Result{Columns: p.columns}
	for _, r := range results {
		if r != nil {
			if res.Columns == nil {
				res.Columns = r.Columns
			}
			res.Rows = append(res.Rows, r.Rows...)
		}
	}
	return res, nil
}

func (p *distPlan) cleanup() {
	if p.cleanupPrefix == "" {
		return
	}
	for _, nodeID := range p.cleanupNodes {
		if nodeID == p.node.ID {
			p.node.Eng.DropIntermediateResults(p.cleanupPrefix)
			continue
		}
		nodeID := nodeID
		p.node.withNodeConn(nodeID, func(c *wire.Conn) error {
			return c.DropIntermediateResults(p.cleanupPrefix)
		})
	}
}

// ---------------------------------------------------------------------------
// Planner hook

// plannerHook is the entry point: it intercepts statements that reference
// Citus tables and walks the planner hierarchy from cheapest to most
// general — fast path, router, logical pushdown, logical join order (§3.5:
// "Citus iterates over the four planners, from lowest to highest
// overhead").
func (n *Node) plannerHook(s *engine.Session, stmt sql.Statement, params []types.Datum) (engine.Plan, error) {
	if plan, handled, err := n.matchUDF(s, stmt, params); handled {
		return plan, err
	}
	// Route on FROM-clause tables only: a query whose distributed
	// references live solely in expression subqueries runs locally, and
	// each subquery is recursively planned as a distributed query when the
	// engine executes it (the engine's subquery executor re-enters this
	// hook).
	names := sql.FromTables(stmt)
	touchesCitus := false
	for _, name := range names {
		if n.Meta.IsCitusTable(name) {
			touchesCitus = true
			break
		}
	}
	if !touchesCitus {
		return nil, nil
	}
	if !n.canCoordinate() {
		return nil, fmt.Errorf("node %d cannot plan distributed queries: metadata is not synced (run start_metadata_sync_to_node)", n.ID)
	}
	// fast path: repeated router statements plan from the distributed-plan
	// cache, skipping the tier walk below entirely
	if !n.Cfg.DisablePlanCache {
		if plan, handled, err := n.planCache.tryPlan(n, stmt, params); handled || err != nil {
			return plan, err
		}
	}
	switch st := stmt.(type) {
	case *sql.SelectStmt:
		return n.planDistSelect(st, params)
	case *sql.InsertStmt:
		return n.planDistInsert(st, params)
	case *sql.UpdateStmt:
		return n.planDistModify(st, st.Table, st.Where, params)
	case *sql.DeleteStmt:
		return n.planDistModify(st, st.Table, st.Where, params)
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// Distribution-column filter extraction

// distFilter records "range/table X has distribution column = const value".
type distFilters map[string]types.Datum // range or table name (lower) -> value

// collectDistFilters finds `col = const` conjuncts anywhere in the
// statement for the given (rangeName -> tableName) map, keyed per citus
// table. The router and fast-path planners both use it.
func (n *Node) collectDistFilters(stmt sql.Statement, params []types.Datum) (map[string]types.Datum, map[string]string) {
	// map range names to table names across all FROM clauses; tables keeps
	// each table once so unqualified conjuncts probe it once (ranges holds
	// both alias and name entries, which would double-probe)
	ranges := map[string]string{}
	var tables []string
	sql.WalkTables(stmt, func(bt *sql.BaseTable) {
		name := bt.Name
		if _, seen := ranges[name]; !seen {
			tables = append(tables, name)
		}
		ranges[bt.RefName()] = name
		ranges[name] = name
	})

	values := map[string]types.Datum{} // table name -> dist col value
	record := func(qualifier, col string, val types.Datum) {
		tryTable := func(tbl string) {
			dt, ok := n.Meta.Table(tbl)
			if !ok || dt.Type != metadata.DistributedTable || dt.DistColumn != col {
				return
			}
			if _, exists := values[tbl]; !exists {
				values[tbl] = val
			}
		}
		if qualifier != "" {
			if tbl, ok := ranges[qualifier]; ok {
				tryTable(tbl)
			}
			return
		}
		for _, tbl := range tables {
			tryTable(tbl)
		}
	}

	visitConjunct := func(e sql.Expr) {
		b, ok := e.(*sql.BinaryExpr)
		if !ok || b.Op != sql.OpEq {
			return
		}
		cr, crOK := b.L.(*sql.ColumnRef)
		other := b.R
		if !crOK {
			cr, crOK = b.R.(*sql.ColumnRef)
			other = b.L
		}
		if !crOK {
			return
		}
		ev, err := expr.Compile(other, nil)
		if err != nil {
			return
		}
		val, err := ev(&expr.Ctx{Params: params})
		if err != nil || val == nil {
			return
		}
		record(cr.Table, cr.Name, val)
	}

	var walkConjunctSources func(sel *sql.SelectStmt)
	var visitTableRef func(tr sql.TableRef)
	visitTableRef = func(tr sql.TableRef) {
		switch t := tr.(type) {
		case *sql.JoinRef:
			visitTableRef(t.Left)
			visitTableRef(t.Right)
			for _, c := range splitAnd(t.On) {
				visitConjunct(c)
			}
		case *sql.SubqueryRef:
			walkConjunctSources(t.Select)
		}
	}
	walkConjunctSources = func(sel *sql.SelectStmt) {
		if sel == nil {
			return
		}
		for _, c := range splitAnd(sel.Where) {
			visitConjunct(c)
		}
		for _, tr := range sel.From {
			visitTableRef(tr)
		}
	}

	switch st := stmt.(type) {
	case *sql.SelectStmt:
		walkConjunctSources(st)
	case *sql.UpdateStmt:
		for _, c := range splitAnd(st.Where) {
			visitConjunct(c)
		}
	case *sql.DeleteStmt:
		for _, c := range splitAnd(st.Where) {
			visitConjunct(c)
		}
	}
	return values, ranges
}

func splitAnd(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == sql.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sql.Expr{e}
}

// citusTablesIn lists the distinct citus tables a statement references,
// split by type.
func (n *Node) citusTablesIn(stmt sql.Statement) (dist, ref []string) {
	seen := map[string]bool{}
	for _, name := range sql.StatementTables(stmt) {
		if seen[name] {
			continue
		}
		seen[name] = true
		dt, ok := n.Meta.Table(name)
		if !ok {
			continue
		}
		if dt.Type == metadata.ReferenceTable {
			ref = append(ref, name)
		} else {
			dist = append(dist, name)
		}
	}
	return dist, ref
}

// shardNameRewriter builds the table→shard renaming for one shard index.
func (n *Node) shardNameRewriter(shardIndex int) func(string) string {
	return func(name string) string {
		dt, ok := n.Meta.Table(name)
		if !ok {
			return name
		}
		shards := n.Meta.Shards(name)
		if dt.Type == metadata.ReferenceTable {
			return shards[0].ShardName()
		}
		if shardIndex < len(shards) {
			return shards[shardIndex].ShardName()
		}
		return name
	}
}

// ---------------------------------------------------------------------------
// Router planner (and fast path)

// planRouter attempts to scope the whole statement to one co-located shard
// group (§3.5). Returns nil when the query is not routable.
func (n *Node) planRouter(stmt sql.Statement, params []types.Datum, isWrite bool, tag string) (*distPlan, error) {
	dist, ref := n.citusTablesIn(stmt)

	// Reference-table-only statements route to the local replica (reads)
	// — writes to reference tables are handled by the DML planners.
	if len(dist) == 0 {
		clone, err := sql.CloneStatement(stmt)
		if err != nil {
			return nil, err
		}
		sql.RewriteTables(clone, n.shardNameRewriter(0))
		return &distPlan{
			node:    n,
			tasks:   []task{{nodeID: n.ID, shardGroup: -1, sql: clone.String(), params: params, isWrite: isWrite}},
			isDML:   isWrite,
			tag:     tag,
			explain: []string{"Custom Scan (Citus Router)", "  Task Count: 1 (reference table, local replica)"},
		}, nil
	}

	values, _ := n.collectDistFilters(stmt, params)

	// every distributed table needs a distribution column filter, all in
	// the same co-location group, all landing on the same shard index
	shardIndex := -1
	colocation := -1
	var groupShard *metadata.Shard
	for _, tbl := range dist {
		val, ok := values[tbl]
		if !ok {
			return nil, nil
		}
		dt, _ := n.Meta.Table(tbl)
		if colocation == -1 {
			colocation = dt.ColocationID
		} else if dt.ColocationID != colocation {
			return nil, nil
		}
		sh, err := n.Meta.ShardForValue(tbl, val)
		if err != nil {
			return nil, err
		}
		if shardIndex == -1 {
			shardIndex = sh.Index
			groupShard = sh
		} else if sh.Index != shardIndex {
			return nil, nil
		}
	}
	_ = ref

	nodeID, err := n.Meta.PrimaryPlacement(groupShard.ID)
	if err != nil {
		return nil, err
	}
	clone, err := sql.CloneStatement(stmt)
	if err != nil {
		return nil, err
	}
	sql.RewriteTables(clone, n.shardNameRewriter(shardIndex))
	group := metadata.ShardGroupID(colocation, shardIndex)
	var readNodes []int
	if !isWrite {
		readNodes = n.Meta.ReadPlacements(groupShard.ID)
	}
	return &distPlan{
		node: n,
		tasks: []task{{
			nodeID: nodeID, shardGroup: group,
			sql: clone.String(), params: params, isWrite: isWrite,
			readNodes: readNodes,
		}},
		isDML: isWrite,
		tag:   tag,
		explain: []string{
			"Custom Scan (Citus Router)",
			fmt.Sprintf("  Task Count: 1 (shard group %d on node %d)", shardIndex, nodeID),
		},
	}, nil
}

// ---------------------------------------------------------------------------
// SELECT planning

func (n *Node) planDistSelect(sel *sql.SelectStmt, params []types.Datum) (engine.Plan, error) {
	// fast path / router
	plan, err := n.planRouter(sel, params, false, "")
	if err != nil {
		return nil, err
	}
	if plan != nil {
		if sel.ForUpdate {
			// SELECT ... FOR UPDATE takes row locks on the worker; treat
			// the task as a write so it joins the distributed transaction
			// (and pin it to the primary placement — locks on a standby
			// would not protect anything).
			for i := range plan.tasks {
				plan.tasks[i].isWrite = true
				plan.tasks[i].readNodes = nil
			}
			plan.isDML = false
		}
		return plan, nil
	}
	if sel.ForUpdate {
		return nil, fmt.Errorf("SELECT FOR UPDATE requires a distribution column filter")
	}
	// logical pushdown
	plan, err = n.planPushdown(sel, params)
	if err != nil || plan != nil {
		return plan, err
	}
	// logical join order (broadcast / repartition joins)
	plan, err = n.planJoinOrder(sel, params)
	if err != nil || plan != nil {
		return plan, err
	}
	return nil, fmt.Errorf("complex distributed queries of this shape are not supported (non-co-located correlated subqueries are a known limitation, see paper §2.4)")
}

// ---------------------------------------------------------------------------
// DML planning

func (n *Node) planDistInsert(ins *sql.InsertStmt, params []types.Datum) (engine.Plan, error) {
	dt, ok := n.Meta.Table(ins.Table)
	if !ok {
		// INSERT into a local table selecting from citus tables: run the
		// distributed SELECT, then insert locally.
		if ins.Select != nil {
			return n.planInsertSelectViaCoordinator(ins, params)
		}
		return nil, nil
	}
	if ins.Select != nil {
		return n.planInsertSelect(ins, dt, params)
	}

	if dt.Type == metadata.ReferenceTable {
		return n.planReferenceWrite(ins, params, "INSERT")
	}

	// distributed VALUES insert: route each row by its distribution column
	cols := ins.Columns
	if len(cols) == 0 {
		cols = n.tableColumnsFromSchema(dt)
	}
	distIdx := -1
	for i, c := range cols {
		if c == dt.DistColumn {
			distIdx = i
			break
		}
	}
	if distIdx == -1 {
		return nil, fmt.Errorf("INSERT into distributed table %q must provide the distribution column %q", ins.Table, dt.DistColumn)
	}
	ctx := &expr.Ctx{Params: params}
	byShard := map[int][][]sql.Expr{}
	for _, row := range ins.Rows {
		if distIdx >= len(row) {
			return nil, fmt.Errorf("INSERT row is missing the distribution column")
		}
		ev, err := expr.Compile(row[distIdx], nil)
		if err != nil {
			return nil, fmt.Errorf("distribution column value must be constant: %w", err)
		}
		val, err := ev(ctx)
		if err != nil {
			return nil, err
		}
		if val == nil {
			return nil, fmt.Errorf("cannot insert NULL into distribution column %q", dt.DistColumn)
		}
		sh, err := n.Meta.ShardForValue(ins.Table, val)
		if err != nil {
			return nil, err
		}
		byShard[sh.Index] = append(byShard[sh.Index], row)
	}

	shards := n.Meta.Shards(ins.Table)
	var tasks []task
	indexes := make([]int, 0, len(byShard))
	for idx := range byShard {
		indexes = append(indexes, idx)
	}
	sort.Ints(indexes)
	for _, idx := range indexes {
		rows := byShard[idx]
		clone := &sql.InsertStmt{
			Table:      shards[idx].ShardName(),
			Columns:    cols,
			Rows:       rows,
			OnConflict: ins.OnConflict,
			Returning:  ins.Returning,
		}
		nodeID, err := n.Meta.PrimaryPlacement(shards[idx].ID)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{
			nodeID:     nodeID,
			shardGroup: metadata.ShardGroupID(dt.ColocationID, idx),
			sql:        clone.String(),
			params:     params,
			isWrite:    true,
		})
	}
	return &distPlan{
		node:  n,
		tasks: tasks,
		isDML: true,
		tag:   "INSERT 0",
		explain: []string{
			"Custom Scan (Citus Router Insert)",
			fmt.Sprintf("  Task Count: %d", len(tasks)),
		},
	}, nil
}

// planReferenceWrite replicates a write to every node's replica of a
// reference table (§3.3.3: "writes to the reference table are replicated
// to all nodes"), under 2PC.
func (n *Node) planReferenceWrite(stmt sql.Statement, params []types.Datum, tag string) (engine.Plan, error) {
	// active nodes only: a standby's reference replica is maintained by its
	// primary's WAL stream, and writing to it directly would double-apply
	nodes := n.Meta.ActiveNodes()
	var tasks []task
	for _, node := range nodes {
		clone, err := sql.CloneStatement(stmt)
		if err != nil {
			return nil, err
		}
		sql.RewriteTables(clone, n.shardNameRewriter(0))
		tasks = append(tasks, task{
			nodeID: node.ID, shardGroup: -1,
			sql: clone.String(), params: params, isWrite: true,
		})
	}
	return &distPlan{
		node:    n,
		tasks:   tasks,
		isDML:   true,
		tag:     tag + " 0",
		explain: []string{"Custom Scan (Citus Reference Table Write)", fmt.Sprintf("  Task Count: %d", len(tasks))},
		// every replica reports the affected count; average them back by
		// dividing later is unnecessary — report the first
	}, nil
}

func (n *Node) planDistModify(stmt sql.Statement, table string, where sql.Expr, params []types.Datum) (engine.Plan, error) {
	dt, ok := n.Meta.Table(table)
	if !ok {
		return nil, nil
	}
	tag := "UPDATE"
	if _, isDel := stmt.(*sql.DeleteStmt); isDel {
		tag = "DELETE"
	}
	if dt.Type == metadata.ReferenceTable {
		plan, err := n.planReferenceWrite(stmt, params, tag)
		if err != nil {
			return nil, err
		}
		// replicas all report the same affected count; keep only one
		p := plan.(*distPlan)
		p.tag = tag
		p.dedupeReplicaCounts = true
		return p, nil
	}

	// router: single shard when the distribution column is pinned
	plan, err := n.planRouter(stmt, params, true, tag)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		plan.tag = tag
		return plan, nil
	}

	// multi-shard parallel DML (§3.8 / Table 2 "Parallel, distributed DML")
	shards := n.Meta.Shards(table)
	var tasks []task
	for _, sh := range shards {
		clone, err := sql.CloneStatement(stmt)
		if err != nil {
			return nil, err
		}
		sql.RewriteTables(clone, n.shardNameRewriter(sh.Index))
		nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{
			nodeID:     nodeID,
			shardGroup: metadata.ShardGroupID(dt.ColocationID, sh.Index),
			sql:        clone.String(),
			params:     params,
			isWrite:    true,
		})
	}
	return &distPlan{
		node:    n,
		tasks:   tasks,
		isDML:   true,
		tag:     tag,
		explain: []string{"Custom Scan (Citus Multi-Shard Modify)", fmt.Sprintf("  Task Count: %d", len(tasks))},
	}, nil
}

// tableColumnsFromSchema lists column names from the stored schema DDL.
func (n *Node) tableColumnsFromSchema(dt *metadata.DistTable) []string {
	stmt, err := sql.Parse(dt.SchemaSQL)
	if err != nil {
		return nil
	}
	ct, ok := stmt.(*sql.CreateTableStmt)
	if !ok {
		return nil
	}
	cols := make([]string, len(ct.Columns))
	for i, c := range ct.Columns {
		cols[i] = c.Name
	}
	return cols
}

// quoteIdentList is a small deparse helper.
func quoteIdentList(cols []string) string {
	return strings.Join(cols, ", ")
}
