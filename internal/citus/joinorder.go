package citus

import (
	"fmt"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/sql"
	"citusgo/internal/types"
	"citusgo/internal/wire"
)

// planJoinOrder is the logical join-order planner (§3.5): it handles join
// trees with non-co-located joins by moving data — either broadcasting the
// smaller relation to every worker or repartitioning both sides on the join
// key — and picks the strategy that minimizes network traffic. The moved
// relations become intermediate results ("subplans with filters and
// projections pushed into the subplan"), after which the rewritten query is
// planned by the pushdown planner.
func (n *Node) planJoinOrder(sel *sql.SelectStmt, params []types.Datum) (*distPlan, error) {
	dist, _ := n.citusTablesIn(sel)
	if len(dist) != 2 {
		return nil, nil // N-way non-co-located joins are a known limitation
	}
	// subqueries with their own distributed tables are out of scope here
	if err := n.subqueriesPushdownable(sel); err != nil {
		return nil, nil //nolint:nilerr
	}
	a, b := dist[0], dist[1]

	// estimate relation sizes from shard statistics
	rowsA, err := n.distTableRows(a)
	if err != nil {
		return nil, err
	}
	rowsB, err := n.distTableRows(b)
	if err != nil {
		return nil, err
	}
	workers := int64(len(n.Meta.WorkerNodes()))

	// network-traffic cost model: broadcast ships the relation to every
	// worker; repartition ships each relation once
	costBroadcastA := rowsA * workers
	costBroadcastB := rowsB * workers
	costRepartition := rowsA + rowsB

	switch {
	case costBroadcastA <= costBroadcastB && costBroadcastA <= costRepartition:
		return n.planBroadcastJoin(sel, params, a, b)
	case costBroadcastB <= costRepartition:
		return n.planBroadcastJoin(sel, params, b, a)
	default:
		return n.planRepartitionJoin(sel, params, a, b)
	}
}

// distTableRows sums the row estimates of a table's shards.
func (n *Node) distTableRows(table string) (int64, error) {
	var total int64
	for _, sh := range n.Meta.Shards(table) {
		nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
		if err != nil {
			return 0, err
		}
		var rows int64
		var rerr error
		n.withNodeConn(nodeID, func(c *wire.Conn) error {
			rows, rerr = c.TableRows(sh.ShardName())
			return rerr
		})
		if rerr != nil {
			return 0, rerr
		}
		total += rows
	}
	return total, nil
}

// planBroadcastJoin materializes smallTable on every worker as an
// intermediate result and delegates the rewritten query to the pushdown
// planner (§3.5 "broadcast joins").
func (n *Node) planBroadcastJoin(sel *sql.SelectStmt, params []types.Datum, smallTable, bigTable string) (*distPlan, error) {
	irName := fmt.Sprintf("citus_bcast_%d", n.distSeq.Add(1))

	rewritten, err := sql.CloneStatement(sel)
	if err != nil {
		return nil, err
	}
	sql.RewriteTables(rewritten, func(name string) string {
		if name == smallTable {
			return irName
		}
		return name
	})
	inner, err := n.planPushdown(rewritten.(*sql.SelectStmt), params)
	if err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, nil
	}
	inner.explain = append([]string{
		"Custom Scan (Citus Adaptive)",
		fmt.Sprintf("  Join-Order: broadcast join, %s replicated to all workers as %s", smallTable, irName),
	}, inner.explain[1:]...)
	inner.cleanupPrefix = irName
	for _, node := range n.Meta.ActiveNodes() {
		inner.cleanupNodes = append(inner.cleanupNodes, node.ID)
	}

	// the tasks read the broadcast intermediate result, which is shipped to
	// primary workers only — pin them there instead of replica-routing
	for i := range inner.tasks {
		inner.tasks[i].readNodes = nil
	}

	innerPrepare := inner.prepare
	staticTasks := inner.tasks
	inner.tasks = nil
	inner.prepare = func(s *engine.Session, params []types.Datum) ([]task, error) {
		// subplan: pull the small table (as a distributed SELECT) and ship
		// it to every worker
		res, err := s.Exec("SELECT * FROM " + smallTable)
		if err != nil {
			return nil, err
		}
		for _, node := range n.Meta.WorkerNodes() {
			if node.ID == n.ID {
				continue // appended locally below
			}
			var serr error
			n.withNodeConn(node.ID, func(c *wire.Conn) error {
				serr = c.AppendIntermediateResult(irName, res.Columns, res.Rows)
				return serr
			})
			if serr != nil {
				return nil, serr
			}
		}
		// the coordinator may also run tasks (0+1 clusters, reference joins)
		n.Eng.AppendIntermediateResult(irName, res.Columns, res.Rows)
		if innerPrepare != nil {
			return innerPrepare(s, params)
		}
		return staticTasks, nil
	}
	return inner, nil
}

// planRepartitionJoin re-partitions both relations on the join key into
// per-worker buckets and joins co-located buckets (§3.5 "re-partition
// joins").
func (n *Node) planRepartitionJoin(sel *sql.SelectStmt, params []types.Datum, a, b string) (*distPlan, error) {
	// find the equality join conjunct linking a and b
	keyA, keyB, ok := n.findJoinKey(sel, a, b)
	if !ok {
		return nil, fmt.Errorf("cannot repartition: no equality join condition between %q and %q", a, b)
	}
	seq := n.distSeq.Add(1)
	nameA := fmt.Sprintf("citus_repart_%d_a", seq)
	nameB := fmt.Sprintf("citus_repart_%d_b", seq)

	workers := n.Meta.WorkerNodes()
	buckets := len(workers)

	rewritten, err := sql.CloneStatement(sel)
	if err != nil {
		return nil, err
	}
	sql.RewriteTables(rewritten, func(name string) string {
		switch name {
		case a:
			return nameA
		case b:
			return nameB
		default:
			return name
		}
	})
	pq, err := n.buildPushdownQueries(rewritten.(*sql.SelectStmt), fmt.Sprintf("citus_merge_%d", seq))
	if err != nil {
		return nil, err
	}

	plan := &distPlan{
		node:          n,
		columns:       pq.columns,
		mergeName:     fmt.Sprintf("citus_merge_%d", seq),
		mergeQuery:    pq.merge.String(),
		cleanupPrefix: fmt.Sprintf("citus_repart_%d", seq),
		explain: []string{
			"Custom Scan (Citus Adaptive)",
			fmt.Sprintf("  Join-Order: re-partition join on %s.%s = %s.%s into %d buckets", a, keyA, b, keyB, buckets),
			"  Merge Step: " + pq.merge.String(),
		},
	}
	for _, node := range n.Meta.ActiveNodes() {
		plan.cleanupNodes = append(plan.cleanupNodes, node.ID)
	}

	plan.prepare = func(s *engine.Session, params []types.Datum) ([]task, error) {
		if err := n.repartitionTable(s, a, keyA, nameA, workers); err != nil {
			return nil, err
		}
		if err := n.repartitionTable(s, b, keyB, nameB, workers); err != nil {
			return nil, err
		}
		var tasks []task
		for _, w := range workers {
			clone, err := sql.CloneStatement(pq.worker)
			if err != nil {
				return nil, err
			}
			tasks = append(tasks, task{nodeID: w.ID, shardGroup: -1, sql: clone.String(), params: params})
		}
		return tasks, nil
	}
	return plan, nil
}

// findJoinKey locates the equality conjunct joining tables a and b and
// returns the two column names.
func (n *Node) findJoinKey(sel *sql.SelectStmt, a, b string) (string, string, bool) {
	// alias map
	aliases := map[string]string{}
	sql.WalkTables(sel, func(bt *sql.BaseTable) {
		aliases[bt.RefName()] = bt.Name
	})
	var conjuncts []sql.Expr
	conjuncts = append(conjuncts, splitAnd(sel.Where)...)
	var gatherTR func(tr sql.TableRef)
	gatherTR = func(tr sql.TableRef) {
		if j, ok := tr.(*sql.JoinRef); ok {
			gatherTR(j.Left)
			gatherTR(j.Right)
			conjuncts = append(conjuncts, splitAnd(j.On)...)
		}
	}
	for _, tr := range sel.From {
		gatherTR(tr)
	}
	for _, c := range conjuncts {
		be, ok := c.(*sql.BinaryExpr)
		if !ok || be.Op != sql.OpEq {
			continue
		}
		lc, lok := be.L.(*sql.ColumnRef)
		rc, rok := be.R.(*sql.ColumnRef)
		if !lok || !rok || lc.Table == "" || rc.Table == "" {
			continue
		}
		lt, rt := aliases[lc.Table], aliases[rc.Table]
		if lt == a && rt == b {
			return lc.Name, rc.Name, true
		}
		if lt == b && rt == a {
			return rc.Name, lc.Name, true
		}
	}
	return "", "", false
}

// repartitionTable reads each shard of a table (filters/projections could
// be pushed here; we ship full rows) and redistributes the rows by the hash
// of the join key into one intermediate result per worker.
func (n *Node) repartitionTable(s *engine.Session, table, key, irName string, workers []*metadata.Node) error {
	shards := n.Meta.Shards(table)
	var selTasks []task
	for _, sh := range shards {
		nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
		if err != nil {
			return err
		}
		selTasks = append(selTasks, task{
			nodeID: nodeID, shardGroup: -1,
			sql:       "SELECT * FROM " + sh.ShardName(),
			readNodes: n.Meta.ReadPlacements(sh.ID),
		})
	}
	results, err := n.executeTasks(s, selTasks)
	if err != nil {
		return err
	}
	var cols []string
	keyIdx := -1
	buckets := make([][]types.Row, len(workers))
	for _, r := range results {
		if r == nil {
			continue
		}
		if cols == nil {
			cols = r.Columns
			for i, c := range cols {
				if c == key {
					keyIdx = i
				}
			}
			if keyIdx == -1 {
				return fmt.Errorf("join key %q not found in %q", key, table)
			}
		}
		for _, row := range r.Rows {
			h := types.HashDatum(row[keyIdx])
			bucket := int(uint32(h)) % len(workers)
			buckets[bucket] = append(buckets[bucket], row)
		}
	}
	for i, w := range workers {
		var serr error
		n.withNodeConn(w.ID, func(c *wire.Conn) error {
			serr = c.AppendIntermediateResult(irName, cols, buckets[i])
			return serr
		})
		if serr != nil {
			return serr
		}
	}
	return nil
}
