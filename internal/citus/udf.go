package citus

import (
	"fmt"
	"strings"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/expr"
	"citusgo/internal/fault"
	"citusgo/internal/obs"
	"citusgo/internal/sql"
	"citusgo/internal/types"
	"citusgo/internal/wire"
)

// matchUDF intercepts the Citus user-defined functions — the SQL-callable
// control plane the paper describes in §3.1 ("UDFs ... are primarily used
// to manipulate the Citus metadata and implement remote procedure calls"):
//
//	SELECT create_distributed_table('t', 'col' [, colocate_with := '...'])
//	SELECT create_reference_table('t')
//	SELECT start_metadata_sync_to_node('node-name')
//	SELECT rebalance_table_shards()
//	SELECT create_restore_point('name')
//	SELECT citus_recover_prepared_transactions()
//	SELECT citus_move_shard_placement(shard_id, from_node, to_node)
//	SELECT citus_stat_counters()
//	SELECT citus_stat_activity()
//	SELECT citus_stat_ssi()
//	SELECT citus_trace(trace_id)
func (n *Node) matchUDF(s *engine.Session, stmt sql.Statement, params []types.Datum) (engine.Plan, bool, error) {
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok || len(sel.From) != 0 || len(sel.Columns) != 1 {
		return nil, false, nil
	}
	fc, ok := sel.Columns[0].Expr.(*sql.FuncCall)
	if !ok {
		return nil, false, nil
	}
	name := strings.ToLower(fc.Name)

	evalArg := func(i int) (types.Datum, error) {
		if i >= len(fc.Args) {
			return nil, fmt.Errorf("%s: missing argument %d", name, i+1)
		}
		arg := fc.Args[i]
		if na, isNamed := arg.(*sql.NamedArg); isNamed {
			arg = na.Value
		}
		ev, err := expr.Compile(arg, nil)
		if err != nil {
			return nil, err
		}
		return ev(&expr.Ctx{Params: params})
	}
	namedArg := func(argName string) (types.Datum, bool, error) {
		for _, a := range fc.Args {
			if na, isNamed := a.(*sql.NamedArg); isNamed && strings.EqualFold(na.Name, argName) {
				ev, err := expr.Compile(na.Value, nil)
				if err != nil {
					return nil, false, err
				}
				v, err := ev(&expr.Ctx{Params: params})
				return v, true, err
			}
		}
		return nil, false, nil
	}

	switch name {
	case "create_distributed_table":
		return &udfPlan{name: name, fn: func(s *engine.Session) (types.Datum, error) {
			tableV, err := evalArg(0)
			if err != nil {
				return nil, err
			}
			colV, err := evalArg(1)
			if err != nil {
				return nil, err
			}
			colocate := ""
			if v, ok, err := namedArg("colocate_with"); err != nil {
				return nil, err
			} else if ok {
				colocate = types.Format(v)
			} else if len(fc.Args) >= 3 {
				if v, err := evalArg(2); err == nil && v != nil {
					colocate = types.Format(v)
				}
			}
			return nil, n.CreateDistributedTable(s, types.Format(tableV), types.Format(colV), colocate)
		}}, true, nil

	case "create_reference_table":
		return &udfPlan{name: name, fn: func(s *engine.Session) (types.Datum, error) {
			tableV, err := evalArg(0)
			if err != nil {
				return nil, err
			}
			return nil, n.CreateReferenceTable(s, types.Format(tableV))
		}}, true, nil

	case "start_metadata_sync_to_node":
		return &udfPlan{name: name, fn: func(s *engine.Session) (types.Datum, error) {
			nodeV, err := evalArg(0)
			if err != nil {
				return nil, err
			}
			return nil, n.StartMetadataSync(types.Format(nodeV))
		}}, true, nil

	case "rebalance_table_shards":
		return &udfPlan{name: name, fn: func(s *engine.Session) (types.Datum, error) {
			moves, err := n.RebalanceTableShards(s)
			return int64(moves), err
		}}, true, nil

	case "citus_move_shard_placement":
		return &udfPlan{name: name, fn: func(s *engine.Session) (types.Datum, error) {
			shardV, err := evalArg(0)
			if err != nil {
				return nil, err
			}
			fromV, err := evalArg(1)
			if err != nil {
				return nil, err
			}
			toV, err := evalArg(2)
			if err != nil {
				return nil, err
			}
			shardID, _ := types.CoerceTo(shardV, types.Int)
			from, _ := types.CoerceTo(fromV, types.Int)
			to, _ := types.CoerceTo(toV, types.Int)
			return nil, n.MoveShardPlacement(s, shardID.(int64), int(from.(int64)), int(to.(int64)))
		}}, true, nil

	case "create_restore_point":
		return &udfPlan{name: name, fn: func(s *engine.Session) (types.Datum, error) {
			nameV, err := evalArg(0)
			if err != nil {
				return nil, err
			}
			return n.CreateRestorePoint(types.Format(nameV))
		}}, true, nil

	case "citus_node_create_restore_point":
		// node-local part of create_restore_point, invoked over the wire
		return &udfPlan{name: name, fn: func(s *engine.Session) (types.Datum, error) {
			nameV, err := evalArg(0)
			if err != nil {
				return nil, err
			}
			return n.Eng.WAL.RestorePoint(types.Format(nameV)), nil
		}}, true, nil

	case "citus_recover_prepared_transactions":
		return &udfPlan{name: name, fn: func(s *engine.Session) (types.Datum, error) {
			return int64(n.RecoverTwoPhaseCommits()), nil
		}}, true, nil

	case "citus_tables":
		// introspection: one row per citus table (the citus_tables view)
		return &tablesPlan{node: n}, true, nil

	case "citus_stat_counters":
		// observability: one row per metric in the global obs registry
		return &statCountersPlan{}, true, nil

	case "citus_plancache_stats":
		// observability: the coordinator distributed-plan cache
		return &planCacheStatsPlan{node: n}, true, nil

	case "citus_stat_ssi":
		// observability: per-session SSI state (locks, conflict edges,
		// doomed flags) across the cluster
		return &statSSIPlan{node: n, clusterWide: true}, true, nil

	case "citus_node_stat_ssi":
		// node-local part of citus_stat_ssi, invoked over the wire
		return &statSSIPlan{node: n}, true, nil

	case "citus_stat_activity":
		// observability: active/prepared transactions across the cluster
		return &statActivityPlan{node: n, clusterWide: true}, true, nil

	case "citus_node_stat_activity":
		// node-local part of citus_stat_activity, invoked over the wire
		return &statActivityPlan{node: n}, true, nil

	case "citus_trace":
		// observability: the reassembled distributed trace, one row per span
		return &tracePlan{node: n, arg: func() (types.Datum, error) { return evalArg(0) }}, true, nil
	}
	return nil, false, nil
}

// statCountersPlan renders the obs registry as a two-column relation — the
// SQL-queryable counterpart of the citus_stat_* views (§5–6 of the paper's
// operational story).
type statCountersPlan struct{}

func (p *statCountersPlan) Columns() []string      { return []string{"name", "value"} }
func (p *statCountersPlan) ExplainLines() []string { return []string{"Citus Stat Counters"} }

func (p *statCountersPlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	snap := obs.Default().Snapshot()
	res := &engine.Result{Columns: p.Columns()}
	for _, k := range snap.Keys() {
		res.Rows = append(res.Rows, types.Row{k, snap[k]})
	}
	res.Tag = fmt.Sprintf("SELECT %d", len(res.Rows))
	return res, nil
}

// planCacheStatsPlan renders this node's distributed-plan cache as a
// name/value relation: aggregate counters first, then one
// `shard_groups[<normalized sql>]` row per cached entry reporting how many
// per-shard-group deparses it has memoized.
type planCacheStatsPlan struct{ node *Node }

func (p *planCacheStatsPlan) Columns() []string      { return []string{"name", "value"} }
func (p *planCacheStatsPlan) ExplainLines() []string { return []string{"Citus Plan Cache Stats"} }

func (p *planCacheStatsPlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	entries, hits, misses, invalidations := p.node.planCache.stats()
	res := &engine.Result{Columns: p.Columns()}
	add := func(name string, v int64) {
		res.Rows = append(res.Rows, types.Row{name, v})
	}
	add("entries", int64(len(entries)))
	add("hits", hits)
	add("misses", misses)
	add("invalidations", invalidations)
	for _, e := range entries {
		add(fmt.Sprintf("shard_groups[%s]", e.key), int64(e.shardGroups))
	}
	res.Tag = fmt.Sprintf("SELECT %d", len(res.Rows))
	return res, nil
}

// statActivityPlan lists in-flight transactions: the local engine's active
// and prepared transactions, and — cluster-wide from a coordinator — every
// other node's, gathered over the wire via citus_node_stat_activity().
type statActivityPlan struct {
	node        *Node
	clusterWide bool
}

func (p *statActivityPlan) Columns() []string {
	return []string{"node_id", "xid", "dist_txn_id", "state", "trace_id", "span_kind"}
}
func (p *statActivityPlan) ExplainLines() []string { return []string{"Citus Stat Activity"} }

func (p *statActivityPlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	res := &engine.Result{Columns: p.Columns()}
	for _, t := range p.node.Eng.Txns.ActiveTxns() {
		traceID, spanKind := t.TraceSpan()
		res.Rows = append(res.Rows, types.Row{int64(p.node.ID), int64(t.XID), t.DistID, "active", int64(traceID), spanKind})
	}
	for _, pi := range p.node.Eng.Txns.ListPrepared() {
		res.Rows = append(res.Rows, types.Row{int64(p.node.ID), int64(pi.XID), pi.DistID, "prepared", int64(0), ""})
	}
	if p.clusterWide {
		for _, node := range p.node.Meta.Nodes() {
			if node.ID == p.node.ID {
				continue
			}
			p.node.withNodeConn(node.ID, func(c *wire.Conn) error {
				remote, err := c.Query("SELECT citus_node_stat_activity()")
				if err != nil {
					return err
				}
				res.Rows = append(res.Rows, remote.Rows...)
				return nil
			})
		}
	}
	res.Tag = fmt.Sprintf("SELECT %d", len(res.Rows))
	return res, nil
}

// statSSIPlan lists per-transaction SSI state the node's ssi.Manager
// tracks — pg_stat-style: one row per serializable transaction (including
// committed ones retained for conflict detection), with its conflict-edge
// counts, SIREAD lock count, and doomed flag. Cluster-wide from a
// coordinator it gathers every other node's rows over the wire via
// citus_node_stat_ssi().
type statSSIPlan struct {
	node        *Node
	clusterWide bool
}

func (p *statSSIPlan) Columns() []string {
	return []string{"node_id", "xid", "dist_txn_id", "state", "doomed",
		"in_conflicts", "out_conflicts", "siread_locks", "commit_seq"}
}
func (p *statSSIPlan) ExplainLines() []string { return []string{"Citus Stat SSI"} }

func (p *statSSIPlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	res := &engine.Result{Columns: p.Columns()}
	for _, ss := range p.node.Eng.SSISessions() {
		res.Rows = append(res.Rows, types.Row{
			int64(p.node.ID), int64(ss.XID), ss.DistID, ss.State, ss.Doomed,
			int64(ss.InConflicts), int64(ss.OutConflicts), int64(ss.SIREADLocks),
			int64(ss.CommitSeq),
		})
	}
	if p.clusterWide {
		for _, node := range p.node.Meta.Nodes() {
			if node.ID == p.node.ID {
				continue
			}
			p.node.withNodeConn(node.ID, func(c *wire.Conn) error {
				remote, err := c.Query("SELECT citus_node_stat_ssi()")
				if err != nil {
					return err
				}
				res.Rows = append(res.Rows, remote.Rows...)
				return nil
			})
		}
	}
	res.Tag = fmt.Sprintf("SELECT %d", len(res.Rows))
	return res, nil
}

// tablesPlan renders the citus_tables metadata view.
type tablesPlan struct{ node *Node }

func (p *tablesPlan) Columns() []string {
	return []string{"table_name", "citus_table_type", "distribution_column", "colocation_id", "shard_count"}
}
func (p *tablesPlan) ExplainLines() []string { return []string{"Citus Tables Metadata"} }

func (p *tablesPlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	res := &engine.Result{Columns: p.Columns()}
	for _, dt := range p.node.Meta.Tables() {
		kind := "distributed"
		distCol := dt.DistColumn
		if dt.Type == metadata.ReferenceTable {
			kind = "reference"
			distCol = "<none>"
		}
		res.Rows = append(res.Rows, types.Row{
			dt.Name, kind, distCol, int64(dt.ColocationID), int64(dt.ShardCount),
		})
	}
	res.Tag = fmt.Sprintf("SELECT %d", len(res.Rows))
	return res, nil
}

// udfPlan runs a Citus UDF as a one-row plan.
type udfPlan struct {
	name string
	fn   func(s *engine.Session) (types.Datum, error)
}

func (p *udfPlan) Columns() []string      { return []string{p.name} }
func (p *udfPlan) ExplainLines() []string { return []string{"Citus UDF " + p.name} }

func (p *udfPlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	v, err := p.fn(s)
	if err != nil {
		return nil, err
	}
	return &engine.Result{
		Columns: []string{p.name},
		Rows:    []types.Row{{v}},
		Tag:     "SELECT 1",
	}, nil
}

// ---------------------------------------------------------------------------
// UDF implementations

// CreateDistributedTable converts a local table into a hash-distributed
// table (§3.3.1): shards are created on the workers, existing data moves to
// them, and the metadata records the distribution.
func (n *Node) CreateDistributedTable(s *engine.Session, table, distColumn, colocateWith string) error {
	if n.Meta.IsCitusTable(table) {
		return fmt.Errorf("table %q is already distributed", table)
	}
	distColType, _, err := n.localColumnType(table, distColumn)
	if err != nil {
		return err
	}
	ct, indexes, err := n.schemaStatements(table)
	if err != nil {
		return err
	}

	shardCount := n.Cfg.ShardCount
	colocationID := 0
	var alignWith *metadata.DistTable
	switch colocateWith {
	case "", "default":
		if id, ok := n.Meta.FindColocationGroup(shardCount, distColType); ok {
			colocationID = id
			alignWith = n.tableInColocationGroup(id)
		}
	case "none":
		// force a new group
	default:
		other, ok := n.Meta.Table(colocateWith)
		if !ok || other.Type != metadata.DistributedTable {
			return fmt.Errorf("colocate_with target %q is not a distributed table", colocateWith)
		}
		if other.DistColType != distColType {
			return fmt.Errorf("cannot colocate %q with %q: distribution column types differ", table, colocateWith)
		}
		colocationID = other.ColocationID
		shardCount = other.ShardCount
		alignWith = other
	}
	if colocationID == 0 {
		colocationID = n.Meta.NewColocationGroup(shardCount, distColType)
	}

	dt := &metadata.DistTable{
		Name:         table,
		Type:         metadata.DistributedTable,
		DistColumn:   distColumn,
		DistColType:  distColType,
		ColocationID: colocationID,
		ShardCount:   shardCount,
		SchemaSQL:    ct.String(),
	}

	// shard ranges divide the hash space; co-located tables share them
	ranges := types.SplitHashSpace(shardCount)
	baseID := n.Meta.NextShardID(shardCount)
	shards := make([]*metadata.Shard, shardCount)
	placements := make(map[int64][]int, shardCount)
	workers := n.Meta.WorkerNodes()
	for i := 0; i < shardCount; i++ {
		shards[i] = &metadata.Shard{ID: baseID + int64(i), Table: table, Index: i, Range: ranges[i]}
		var nodeID int
		if alignWith != nil {
			alignShards := n.Meta.Shards(alignWith.Name)
			nodeID, err = n.Meta.PrimaryPlacement(alignShards[i].ID)
			if err != nil {
				return err
			}
		} else {
			nodeID = workers[i%len(workers)].ID
		}
		placements[shards[i].ID] = []int{nodeID}
	}

	for i, sh := range shards {
		if err := n.createShardOnNode(s, placements[sh.ID][0], sh, ct, indexes); err != nil {
			return fmt.Errorf("creating shard %d: %w", i, err)
		}
	}
	rows, err := n.snapshotLocalRows(s, table)
	if err != nil {
		return err
	}
	if err := n.Meta.AddTable(dt, shards, placements); err != nil {
		return err
	}
	return n.moveLocalDataToShards(s, table, dt, rows)
}

// tableInColocationGroup finds any existing table of a group (for placement
// alignment).
func (n *Node) tableInColocationGroup(id int) *metadata.DistTable {
	for _, t := range n.Meta.Tables() {
		if t.Type == metadata.DistributedTable && t.ColocationID == id {
			return t
		}
	}
	return nil
}

// CreateReferenceTable converts a local table into a reference table
// replicated to every node (§3.3.3).
func (n *Node) CreateReferenceTable(s *engine.Session, table string) error {
	if n.Meta.IsCitusTable(table) {
		return fmt.Errorf("table %q is already distributed", table)
	}
	ct, indexes, err := n.schemaStatements(table)
	if err != nil {
		return err
	}
	dt := &metadata.DistTable{
		Name:       table,
		Type:       metadata.ReferenceTable,
		ShardCount: 1,
		SchemaSQL:  ct.String(),
	}
	shard := &metadata.Shard{
		ID:    n.Meta.NextShardID(1),
		Table: table,
		Index: 0,
		Range: types.ShardRange{Min: -2147483648, Max: 2147483647},
	}
	// reference replicas live on active (primary-role) nodes only; standbys
	// receive the shard through WAL streaming, so creating it there directly
	// would double-apply
	var nodeIDs []int
	for _, node := range n.Meta.ActiveNodes() {
		nodeIDs = append(nodeIDs, node.ID)
	}
	for _, nodeID := range nodeIDs {
		if err := n.createShardOnNode(s, nodeID, shard, ct, indexes); err != nil {
			return err
		}
	}
	rows, err := n.snapshotLocalRows(s, table)
	if err != nil {
		return err
	}
	if err := n.Meta.AddTable(dt, []*metadata.Shard{shard}, map[int64][]int{shard.ID: nodeIDs}); err != nil {
		return err
	}
	return n.moveLocalDataToShards(s, table, dt, rows)
}

// StartMetadataSync marks a node as holding the distributed metadata so it
// can coordinate queries itself (§3.2.1; the in-process catalog is shared,
// so flipping the flag is the sync).
func (n *Node) StartMetadataSync(nodeName string) error {
	// metadata.sync, keyed by target node name: a sync that fails here
	// leaves the node without metadata, exactly like a failed catalog ship.
	if err := fault.CheckKey(fault.PointMetaSync, nodeName); err != nil {
		return fmt.Errorf("metadata sync to %q failed: %w", nodeName, err)
	}
	for _, node := range n.Meta.Nodes() {
		if node.Name == nodeName {
			n.Meta.SetHasMetadata(node.ID, true)
			return nil
		}
	}
	return fmt.Errorf("node %q is not in pg_dist_node", nodeName)
}

// CreateRestorePoint writes a consistent restore point into every node's
// WAL while blocking 2PC commit-record writes (§3.9), so that restoring all
// nodes to the point yields a cluster where every multi-node transaction is
// either fully committed, fully aborted, or recoverable via 2PC records.
func (n *Node) CreateRestorePoint(name string) (types.Datum, error) {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	lsn := n.Eng.WAL.RestorePoint(name)
	// standby WALs are stream mirrors of their primary's; writing a restore
	// point into them directly would break the LSN alignment the shipper
	// depends on, so the point is created on active nodes only
	for _, node := range n.Meta.ActiveNodes() {
		if node.ID == n.ID {
			continue
		}
		var rerr error
		n.withNodeConn(node.ID, func(c *wire.Conn) error {
			_, rerr = c.Query(fmt.Sprintf("SELECT citus_node_create_restore_point(%s)", types.QuoteString(name)))
			return rerr
		})
		if rerr != nil {
			return nil, fmt.Errorf("restore point on node %d: %w", node.ID, rerr)
		}
	}
	return lsn, nil
}
