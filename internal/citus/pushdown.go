package citus

import (
	"fmt"
	"strings"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/expr"
	"citusgo/internal/sql"
	"citusgo/internal/types"
)

// planPushdown implements the logical pushdown planner (§3.5): when the
// whole join tree is co-located it plans one task per shard group, pushing
// as much computation to the workers as possible, and a coordinator-side
// merge ("master") query over the collected intermediate results. Top-level
// aggregates are split into worker-side partial aggregates and a
// coordinator-side combine step (count→sum, avg→sum/count, ...).
func (n *Node) planPushdown(sel *sql.SelectStmt, params []types.Datum) (*distPlan, error) {
	dist, _ := n.citusTablesIn(sel)
	if len(dist) == 0 {
		return nil, nil
	}
	colocation := -1
	for _, tbl := range dist {
		dt, _ := n.Meta.Table(tbl)
		if colocation == -1 {
			colocation = dt.ColocationID
		} else if dt.ColocationID != colocation {
			return nil, nil // different co-location groups: join-order planner
		}
	}
	if !n.joinsAreColocated(sel) {
		return nil, nil
	}
	if err := n.subqueriesPushdownable(sel); err != nil {
		return nil, nil //nolint:nilerr // fall through to the join-order planner
	}

	irName := fmt.Sprintf("citus_merge_%d", n.distSeq.Add(1))
	pq, err := n.buildPushdownQueries(sel, irName)
	if err != nil {
		return nil, err
	}

	shards := n.Meta.Shards(dist[0])
	var tasks []task
	for _, sh := range shards {
		clone, err := sql.CloneStatement(pq.worker)
		if err != nil {
			return nil, err
		}
		sql.RewriteTables(clone, n.shardNameRewriter(sh.Index))
		nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{
			nodeID:     nodeID,
			shardGroup: metadata.ShardGroupID(colocation, sh.Index),
			sql:        clone.String(),
			params:     params,
			readNodes:  n.Meta.ReadPlacements(sh.ID),
		})
	}
	return &distPlan{
		node:       n,
		tasks:      tasks,
		columns:    pq.columns,
		mergeName:  irName,
		mergeQuery: pq.merge.String(),
		explain: []string{
			"Custom Scan (Citus Adaptive)",
			fmt.Sprintf("  Task Count: %d (logical pushdown, co-located)", len(tasks)),
			"  Merge Step: " + pq.merge.String(),
		},
	}, nil
}

// joinsAreColocated verifies that every pair of distributed tables is
// linked through equality conjuncts on their distribution columns (a
// union-find over join equivalence classes).
func (n *Node) joinsAreColocated(sel *sql.SelectStmt) bool {
	// collect distributed ranges: range name -> dist column
	type distRange struct {
		rangeName string
		distCol   string
	}
	var ranges []distRange
	var colRanges func(s *sql.SelectStmt)
	var visitTR func(tr sql.TableRef)
	visitTR = func(tr sql.TableRef) {
		switch t := tr.(type) {
		case *sql.BaseTable:
			if dt, ok := n.Meta.Table(t.Name); ok && dt.Type == metadata.DistributedTable {
				ranges = append(ranges, distRange{rangeName: t.RefName(), distCol: dt.DistColumn})
			}
		case *sql.JoinRef:
			visitTR(t.Left)
			visitTR(t.Right)
		case *sql.SubqueryRef:
			colRanges(t.Select)
		}
	}
	colRanges = func(s *sql.SelectStmt) {
		for _, tr := range s.From {
			visitTR(tr)
		}
	}
	colRanges(sel)
	if len(ranges) <= 1 {
		return true
	}

	// union-find over "range.distcol" vertices plus anonymous equality
	// vertices for unqualified references
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	keyFor := func(cr *sql.ColumnRef) string {
		if cr.Table != "" {
			return cr.Table + "." + cr.Name
		}
		return "?." + cr.Name
	}

	var conjuncts []sql.Expr
	var gatherSel func(s *sql.SelectStmt)
	var gatherTR func(tr sql.TableRef)
	gatherTR = func(tr sql.TableRef) {
		switch t := tr.(type) {
		case *sql.JoinRef:
			gatherTR(t.Left)
			gatherTR(t.Right)
			conjuncts = append(conjuncts, splitAnd(t.On)...)
		case *sql.SubqueryRef:
			gatherSel(t.Select)
		}
	}
	gatherSel = func(s *sql.SelectStmt) {
		conjuncts = append(conjuncts, splitAnd(s.Where)...)
		for _, tr := range s.From {
			gatherTR(tr)
		}
	}
	gatherSel(sel)

	for _, c := range conjuncts {
		b, ok := c.(*sql.BinaryExpr)
		if !ok || b.Op != sql.OpEq {
			continue
		}
		lc, lok := b.L.(*sql.ColumnRef)
		rc, rok := b.R.(*sql.ColumnRef)
		if lok && rok {
			union(keyFor(lc), keyFor(rc))
			// unqualified names bridge to every range's same-named column
			union(keyFor(lc), "?."+lc.Name)
			union(keyFor(rc), "?."+rc.Name)
		}
	}
	root := ""
	for _, r := range ranges {
		key := r.rangeName + "." + r.distCol
		union(key, key) // ensure vertex exists
		// bridge qualified and unqualified spellings
		union(key, key)
		g := find(key)
		alt := find("?." + r.distCol)
		if g != alt {
			// a join may have used the unqualified spelling
			if _, ok := parent["?."+r.distCol]; ok {
				union(key, "?."+r.distCol)
				g = find(key)
			}
		}
		if root == "" {
			root = g
		} else if g != root {
			return false
		}
	}
	return true
}

// subqueriesPushdownable checks that no FROM subquery needs a global merge
// step: a subquery referencing distributed tables must either group by a
// distribution column or be a plain filter/projection (§3.5: "subqueries do
// not require a global merge step (e.g. a GROUP BY must include the
// distribution column)").
func (n *Node) subqueriesPushdownable(sel *sql.SelectStmt) error {
	var check func(s *sql.SelectStmt, topLevel bool) error
	var checkTR func(tr sql.TableRef) error
	checkTR = func(tr sql.TableRef) error {
		switch t := tr.(type) {
		case *sql.JoinRef:
			if err := checkTR(t.Left); err != nil {
				return err
			}
			return checkTR(t.Right)
		case *sql.SubqueryRef:
			return check(t.Select, false)
		}
		return nil
	}
	check = func(s *sql.SelectStmt, topLevel bool) error {
		for _, tr := range s.From {
			if err := checkTR(tr); err != nil {
				return err
			}
		}
		if topLevel {
			return nil
		}
		dist, _ := n.citusTablesIn(s)
		if len(dist) == 0 {
			return nil
		}
		hasAgg := len(s.GroupBy) > 0
		for _, it := range s.Columns {
			if it.Expr != nil && expr.ContainsAggregate(it.Expr) {
				hasAgg = true
			}
		}
		if !hasAgg && s.Limit == nil && !s.Distinct {
			return nil // plain filter/projection subquery
		}
		if n.groupByIncludesDistCol(s) {
			return nil
		}
		return fmt.Errorf("subquery requires a global merge step")
	}
	return check(sel, true)
}

// groupByIncludesDistCol reports whether the select groups by the
// distribution column of one of its distributed tables.
func (n *Node) groupByIncludesDistCol(s *sql.SelectStmt) bool {
	distCols := map[string]bool{}
	sql.WalkTables(s, func(bt *sql.BaseTable) {
		if dt, ok := n.Meta.Table(bt.Name); ok && dt.Type == metadata.DistributedTable {
			distCols[dt.DistColumn] = true
		}
	})
	groupBy := resolvePositionalGroupBy(s)
	for _, g := range groupBy {
		if cr, ok := g.(*sql.ColumnRef); ok && distCols[cr.Name] {
			return true
		}
	}
	return false
}

// resolvePositionalGroupBy expands GROUP BY 1 / alias references.
func resolvePositionalGroupBy(s *sql.SelectStmt) []sql.Expr {
	out := make([]sql.Expr, 0, len(s.GroupBy))
	for _, g := range s.GroupBy {
		if lit, ok := g.(*sql.Literal); ok {
			if pos, isInt := lit.Value.(int64); isInt && pos >= 1 && int(pos) <= len(s.Columns) {
				out = append(out, s.Columns[pos-1].Expr)
				continue
			}
		}
		if cr, ok := g.(*sql.ColumnRef); ok && cr.Table == "" {
			matched := false
			for _, it := range s.Columns {
				if it.Alias == cr.Name {
					out = append(out, it.Expr)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		out = append(out, g)
	}
	return out
}

// ---------------------------------------------------------------------------
// Worker / merge query construction

type pushdownQueries struct {
	worker  *sql.SelectStmt
	merge   *sql.SelectStmt
	columns []string
}

// buildPushdownQueries splits the top-level select into the per-shard
// worker query and the coordinator merge query over intermediate result
// irName.
func (n *Node) buildPushdownQueries(sel *sql.SelectStmt, irName string) (*pushdownQueries, error) {
	hasAgg := false
	for _, it := range sel.Columns {
		if it.Expr != nil && expr.ContainsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if sel.Having != nil && expr.ContainsAggregate(sel.Having) {
		hasAgg = true
	}
	hasGroup := len(sel.GroupBy) > 0

	// Case 1: no aggregation — workers run the query as-is (with LIMIT
	// pushed down), the coordinator re-sorts/limits the union.
	if !hasAgg && !hasGroup {
		return n.buildPassthroughMerge(sel, irName)
	}
	// Case 2: groups are confined to single shards — full pushdown, the
	// coordinator only re-sorts/limits.
	if n.groupByIncludesDistCol(sel) {
		return n.buildPassthroughMerge(sel, irName)
	}
	// Case 3: partial aggregation.
	if sel.Distinct {
		return nil, fmt.Errorf("SELECT DISTINCT with cross-shard aggregation is not supported")
	}
	return n.buildPartialAggMerge(sel, irName)
}

// buildPassthroughMerge makes the worker run (a clone of) the original
// query and the merge re-apply ORDER BY / LIMIT / OFFSET over the union.
func (n *Node) buildPassthroughMerge(sel *sql.SelectStmt, irName string) (*pushdownQueries, error) {
	workerStmt, err := sql.CloneStatement(sel)
	if err != nil {
		return nil, err
	}
	worker := workerStmt.(*sql.SelectStmt)

	// Workers may apply LIMIT limit+offset; OFFSET itself only at merge.
	if worker.Limit != nil && worker.Offset != nil {
		if l, lok := worker.Limit.(*sql.Literal); lok {
			if o, ook := worker.Offset.(*sql.Literal); ook {
				li, lIsInt := l.Value.(int64)
				oi, oIsInt := o.Value.(int64)
				if lIsInt && oIsInt {
					worker.Limit = &sql.Literal{Value: li + oi}
				}
			}
		}
		worker.Offset = nil
	} else if worker.Offset != nil {
		worker.Offset = nil
	}

	hasStar := false
	for _, it := range worker.Columns {
		if it.Star {
			hasStar = true
		}
	}

	merge := &sql.SelectStmt{
		From:   []sql.TableRef{&sql.BaseTable{Name: irName}},
		Limit:  sel.Limit,
		Offset: sel.Offset,
	}

	if hasStar {
		// SELECT *: the intermediate result carries the original column
		// names, so the merge can order by plain names or positions.
		merge.Columns = []sql.SelectItem{{Star: true}}
		for _, o := range sel.OrderBy {
			switch e := o.Expr.(type) {
			case *sql.Literal, *sql.ColumnRef:
				oe := e
				if cr, ok := e.(*sql.ColumnRef); ok {
					oe = &sql.ColumnRef{Name: cr.Name} // strip qualifier
				}
				merge.OrderBy = append(merge.OrderBy, sql.OrderItem{Expr: oe, Desc: o.Desc})
			default:
				return nil, fmt.Errorf("ORDER BY expressions with SELECT * require grouping by the distribution column")
			}
		}
		return &pushdownQueries{worker: worker, merge: merge, columns: nil}, nil
	}

	// Resolve alias/positional references before relabeling worker output.
	worker.GroupBy = resolvePositionalGroupBy(worker)

	var orderPositions []int
	for _, o := range worker.OrderBy {
		pos, err := orderTargetPosition(o.Expr, worker)
		if err != nil {
			return nil, err
		}
		orderPositions = append(orderPositions, pos)
	}
	for i := range worker.OrderBy {
		worker.OrderBy[i].Expr = &sql.Literal{Value: int64(orderPositions[i] + 1)}
	}

	visible := len(sel.Columns)
	columns := make([]string, 0, visible)
	for i := range worker.Columns {
		alias := fmt.Sprintf("c%d", i)
		if i < visible {
			columns = append(columns, outputNameOf(sel.Columns[i]))
			merge.Columns = append(merge.Columns, sql.SelectItem{
				Expr:  &sql.ColumnRef{Name: alias},
				Alias: columns[i],
			})
		}
		worker.Columns[i].Alias = alias
	}
	for i, o := range sel.OrderBy {
		merge.OrderBy = append(merge.OrderBy, sql.OrderItem{
			Expr: &sql.ColumnRef{Name: fmt.Sprintf("c%d", orderPositions[i])},
			Desc: o.Desc,
		})
	}
	return &pushdownQueries{worker: worker, merge: merge, columns: columns}, nil
}

// orderTargetPosition resolves an ORDER BY expression to a worker output
// position, appending a hidden column when necessary.
func orderTargetPosition(e sql.Expr, worker *sql.SelectStmt) (int, error) {
	if lit, ok := e.(*sql.Literal); ok {
		if pos, isInt := lit.Value.(int64); isInt {
			if pos < 1 || int(pos) > len(worker.Columns) {
				return 0, fmt.Errorf("ORDER BY position %d out of range", pos)
			}
			return int(pos) - 1, nil
		}
	}
	text := e.String()
	for i, it := range worker.Columns {
		if it.Star {
			continue
		}
		if it.Expr.String() == text {
			return i, nil
		}
		if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
			if it.Alias == cr.Name || (it.Alias == "" && outputNameOf(it) == cr.Name) {
				return i, nil
			}
		}
	}
	for _, it := range worker.Columns {
		if it.Star {
			return 0, fmt.Errorf("cannot resolve ORDER BY expression with SELECT *")
		}
	}
	worker.Columns = append(worker.Columns, sql.SelectItem{Expr: e, Alias: fmt.Sprintf("worker_ord_%d", len(worker.Columns))})
	return len(worker.Columns) - 1, nil
}

// buildPartialAggMerge splits aggregates into worker partials and a
// coordinator combine query.
func (n *Node) buildPartialAggMerge(sel *sql.SelectStmt, irName string) (*pushdownQueries, error) {
	groupBy := resolvePositionalGroupBy(sel)
	pr := &partialRewriter{groupText: make(map[string]int)}
	for i, g := range groupBy {
		pr.groupText[g.String()] = i
		pr.worker = append(pr.worker, sql.SelectItem{Expr: g, Alias: fmt.Sprintf("wg%d", i)})
	}

	merge := &sql.SelectStmt{
		From: []sql.TableRef{&sql.BaseTable{Name: irName}},
	}
	var columns []string
	for _, it := range sel.Columns {
		if it.Star {
			return nil, fmt.Errorf("SELECT * with cross-shard aggregation is not supported")
		}
		mergedExpr, err := pr.rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		merge.Columns = append(merge.Columns, sql.SelectItem{Expr: mergedExpr, Alias: outputNameOf(it)})
		columns = append(columns, outputNameOf(it))
	}
	for i := range groupBy {
		merge.GroupBy = append(merge.GroupBy, &sql.ColumnRef{Name: fmt.Sprintf("wg%d", i)})
	}
	if sel.Having != nil {
		h, err := pr.rewrite(sel.Having)
		if err != nil {
			return nil, err
		}
		merge.Having = h
	}
	for _, o := range sel.OrderBy {
		if lit, ok := o.Expr.(*sql.Literal); ok {
			if pos, isInt := lit.Value.(int64); isInt {
				merge.OrderBy = append(merge.OrderBy, sql.OrderItem{Expr: &sql.Literal{Value: pos}, Desc: o.Desc})
				continue
			}
		}
		// alias reference into the merge output?
		if cr, ok := o.Expr.(*sql.ColumnRef); ok && cr.Table == "" {
			matched := false
			for i, it := range sel.Columns {
				if it.Alias == cr.Name || outputNameOf(it) == cr.Name {
					merge.OrderBy = append(merge.OrderBy, sql.OrderItem{Expr: &sql.Literal{Value: int64(i + 1)}, Desc: o.Desc})
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		oe, err := pr.rewrite(o.Expr)
		if err != nil {
			return nil, err
		}
		merge.OrderBy = append(merge.OrderBy, sql.OrderItem{Expr: oe, Desc: o.Desc})
	}
	merge.Limit = sel.Limit
	merge.Offset = sel.Offset

	workerStmt, err := sql.CloneStatement(sel)
	if err != nil {
		return nil, err
	}
	worker := workerStmt.(*sql.SelectStmt)
	worker.Columns = pr.worker
	worker.GroupBy = groupBy
	worker.Having = nil // applied over merged aggregates at the coordinator
	worker.OrderBy = nil
	worker.Limit = nil
	worker.Offset = nil

	n.pushTopNToWorkers(sel, pr, worker)

	return &pushdownQueries{worker: worker, merge: merge, columns: columns}, nil
}

// pushTopNToWorkers ships ORDER BY ... LIMIT down to the workers of a
// partial-aggregate plan when it is provably sound: every ORDER BY key must
// be a grouping expression. Groups are complete per worker (each group's
// rows live on whichever workers hold them, and partials for one group
// merge across workers — but the group *key* ordering needs no merge), so
// a group that ranks in the global top k(+offset) ranks within the top
// k(+offset) on every worker that has it; the per-worker TopN therefore
// retains a superset of the global answer and the coordinator's existing
// ORDER BY/LIMIT merge finishes the job. ORDER BY on an aggregate cannot
// be pushed here: a group's partial on one worker says nothing about its
// global rank. HAVING also blocks the pushdown — it is applied over merged
// aggregates at the coordinator, and workers cannot know which of their
// top-k groups it will discard.
//
// Only literal LIMIT/OFFSET values are pushed (parameters would need
// binding before plan-cache time); anything else leaves the worker query
// unbounded, exactly as before.
func (n *Node) pushTopNToWorkers(sel *sql.SelectStmt, pr *partialRewriter, worker *sql.SelectStmt) {
	if n.Cfg.DisableTopNPushdown || sel.Limit == nil || sel.Having != nil || len(sel.OrderBy) == 0 {
		return
	}
	limit, ok := literalInt(sel.Limit)
	if !ok || limit < 0 {
		return
	}
	offset := int64(0)
	if sel.Offset != nil {
		if offset, ok = literalInt(sel.Offset); !ok || offset < 0 {
			return
		}
	}
	orderBy := make([]sql.OrderItem, 0, len(sel.OrderBy))
	for _, o := range sel.OrderBy {
		e := o.Expr
		// positional / select-list-alias references resolve to the
		// projected expression first
		if lit, isLit := e.(*sql.Literal); isLit {
			pos, isInt := lit.Value.(int64)
			if !isInt || pos < 1 || int(pos) > len(sel.Columns) {
				return
			}
			e = sel.Columns[pos-1].Expr
		} else if cr, isRef := e.(*sql.ColumnRef); isRef && cr.Table == "" {
			for _, it := range sel.Columns {
				if it.Alias == cr.Name || outputNameOf(it) == cr.Name {
					e = it.Expr
					break
				}
			}
		}
		gi, isGroup := pr.groupText[e.String()]
		if !isGroup {
			return
		}
		// group i is worker output column wg<i>, at position i+1
		orderBy = append(orderBy, sql.OrderItem{
			Expr: &sql.Literal{Value: int64(gi + 1)},
			Desc: o.Desc,
		})
	}
	worker.OrderBy = orderBy
	worker.Limit = &sql.Literal{Value: limit + offset}
	metTopNPushdowns.Add(1)
}

func literalInt(e sql.Expr) (int64, bool) {
	lit, ok := e.(*sql.Literal)
	if !ok {
		return 0, false
	}
	v, isInt := lit.Value.(int64)
	return v, isInt
}

// partialRewriter rewrites an expression for the merge query, accumulating
// the worker-side partial columns it needs.
type partialRewriter struct {
	groupText map[string]int
	worker    []sql.SelectItem
	aggSeq    int
}

func (pr *partialRewriter) rewrite(e sql.Expr) (sql.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if i, ok := pr.groupText[e.String()]; ok {
		return &sql.ColumnRef{Name: fmt.Sprintf("wg%d", i)}, nil
	}
	switch x := e.(type) {
	case *sql.FuncCall:
		if expr.IsAggregate(x.Name) {
			return pr.partialize(x)
		}
		out := &sql.FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct}
		for _, a := range x.Args {
			ra, err := pr.rewrite(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ra)
		}
		return out, nil
	case *sql.BinaryExpr:
		l, err := pr.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		r, err := pr.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		sub, err := pr.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		return &sql.UnaryExpr{Op: x.Op, E: sub}, nil
	case *sql.CastExpr:
		sub, err := pr.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		return &sql.CastExpr{E: sub, To: x.To}, nil
	case *sql.CaseExpr:
		out := &sql.CaseExpr{}
		var err error
		if out.Operand, err = pr.rewrite(x.Operand); err != nil {
			return nil, err
		}
		for _, w := range x.Whens {
			cw, err := pr.rewrite(w.When)
			if err != nil {
				return nil, err
			}
			ct, err := pr.rewrite(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, sql.CaseWhen{When: cw, Then: ct})
		}
		if out.Else, err = pr.rewrite(x.Else); err != nil {
			return nil, err
		}
		return out, nil
	case *sql.ColumnRef:
		return nil, fmt.Errorf("column %q must appear in the GROUP BY clause or be used in an aggregate function", x.Name)
	default:
		// literals and other leaf expressions pass through
		if !expr.ContainsAggregate(e) && !referencesColumns(e) {
			return e, nil
		}
		return nil, fmt.Errorf("expression %s is not supported in cross-shard aggregation", e.String())
	}
}

func referencesColumns(e sql.Expr) bool {
	found := false
	expr.WalkExpr(e, func(x sql.Expr) bool {
		if _, ok := x.(*sql.ColumnRef); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// partialize splits one aggregate call (§ "Citus distributes the outer
// aggregation step by calculating partial aggregates on the worker nodes
// and merging the partial aggregates on the coordinator").
func (pr *partialRewriter) partialize(fc *sql.FuncCall) (sql.Expr, error) {
	name := strings.ToLower(fc.Name)
	if fc.Distinct {
		return nil, fmt.Errorf("%s(DISTINCT ...) requires grouping by the distribution column", name)
	}
	switch name {
	case "count", "sum":
		alias := pr.nextAgg()
		pr.worker = append(pr.worker, sql.SelectItem{Expr: fc, Alias: alias})
		merged := &sql.FuncCall{Name: "sum", Args: []sql.Expr{&sql.ColumnRef{Name: alias}}}
		if name == "count" {
			// sum of counts is NULL over zero rows; count must be 0
			return &sql.FuncCall{Name: "coalesce", Args: []sql.Expr{merged, &sql.Literal{Value: int64(0)}}}, nil
		}
		return merged, nil
	case "min", "max":
		alias := pr.nextAgg()
		pr.worker = append(pr.worker, sql.SelectItem{Expr: fc, Alias: alias})
		return &sql.FuncCall{Name: name, Args: []sql.Expr{&sql.ColumnRef{Name: alias}}}, nil
	case "avg":
		sumAlias := pr.nextAgg()
		cntAlias := pr.nextAgg()
		pr.worker = append(pr.worker,
			sql.SelectItem{Expr: &sql.FuncCall{Name: "sum", Args: fc.Args}, Alias: sumAlias},
			sql.SelectItem{Expr: &sql.FuncCall{Name: "count", Args: fc.Args}, Alias: cntAlias},
		)
		num := &sql.CastExpr{
			E:  &sql.FuncCall{Name: "sum", Args: []sql.Expr{&sql.ColumnRef{Name: sumAlias}}},
			To: types.Float,
		}
		den := &sql.FuncCall{Name: "nullif", Args: []sql.Expr{
			&sql.FuncCall{Name: "sum", Args: []sql.Expr{&sql.ColumnRef{Name: cntAlias}}},
			&sql.Literal{Value: int64(0)},
		}}
		return &sql.BinaryExpr{Op: sql.OpDiv, L: num, R: den}, nil
	}
	return nil, fmt.Errorf("aggregate %s cannot be distributed", name)
}

func (pr *partialRewriter) nextAgg() string {
	pr.aggSeq++
	return fmt.Sprintf("wa%d", pr.aggSeq)
}

// outputNameOf mirrors the engine's output naming.
func outputNameOf(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sql.ColumnRef:
		return e.Name
	case *sql.FuncCall:
		return strings.ToLower(e.Name)
	case *sql.CastExpr:
		if cr, ok := e.E.(*sql.ColumnRef); ok {
			return cr.Name
		}
		return e.To.String()
	default:
		return "?column?"
	}
}
