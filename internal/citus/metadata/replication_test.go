package metadata

import (
	"reflect"
	"testing"

	"citusgo/internal/types"
)

// replCatalog builds coordinator(1) + primaries w1(2), w2(3) each with one
// standby (4 replicates 2, 5 replicates 3), and one table whose shards
// land on the primaries round-robin.
func replCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	c.AddNode(&Node{ID: 1, Name: "c", IsCoordinator: true})
	c.AddNode(&Node{ID: 2, Name: "w1"})
	c.AddNode(&Node{ID: 3, Name: "w2"})
	c.AddNode(&Node{ID: 4, Name: "w1-sb1", Standby: true, StandbyOf: 2})
	c.AddNode(&Node{ID: 5, Name: "w2-sb1", Standby: true, StandbyOf: 3})
	addTestTable(t, c, "r", c.NewColocationGroup(4, types.Int), []int{2, 3})
	return c
}

func TestStandbyPlacementsAddedWithTable(t *testing.T) {
	c := replCatalog(t)
	for _, sh := range c.Shards("r") {
		rows := c.PlacementRows(sh.ID)
		if len(rows) != 2 {
			t.Fatalf("shard %d: %d placement rows, want primary+standby", sh.ID, len(rows))
		}
		if rows[0].Role != RolePrimary || rows[1].Role != RoleStandby {
			t.Fatalf("shard %d roles: %v %v", sh.ID, rows[0].Role, rows[1].Role)
		}
		wantSb := map[int]int{2: 4, 3: 5}[rows[0].NodeID]
		if rows[1].NodeID != wantSb {
			t.Fatalf("shard %d: standby on node %d, want %d", sh.ID, rows[1].NodeID, wantSb)
		}
		// writes fan out to the primary only; reads may use both
		if got := c.Placements(sh.ID); !reflect.DeepEqual(got, []int{rows[0].NodeID}) {
			t.Fatalf("Placements = %v", got)
		}
		if got := c.ReadPlacements(sh.ID); !reflect.DeepEqual(got, []int{rows[0].NodeID, wantSb}) {
			t.Fatalf("ReadPlacements = %v", got)
		}
	}
}

func TestWorkerAndActiveNodesExcludeStandbys(t *testing.T) {
	c := replCatalog(t)
	for _, n := range c.WorkerNodes() {
		if n.Standby {
			t.Fatalf("WorkerNodes includes standby %d", n.ID)
		}
	}
	var active []int
	for _, n := range c.ActiveNodes() {
		active = append(active, n.ID)
	}
	if !reflect.DeepEqual(active, []int{1, 2, 3}) {
		t.Fatalf("ActiveNodes = %v", active)
	}
	if got := c.StandbysOf(2); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("StandbysOf(2) = %v", got)
	}
}

func TestSetNodeDownRoutesReadsAround(t *testing.T) {
	c := replCatalog(t)
	sh := c.Shards("r")[0]
	primary, _ := c.PrimaryPlacement(sh.ID)
	sb := map[int]int{2: 4, 3: 5}[primary]

	v := c.Version()
	c.SetNodeDown(sb, true)
	if c.Version() == v {
		t.Fatal("SetNodeDown did not bump the metadata version")
	}
	if got := c.ReadPlacements(sh.ID); !reflect.DeepEqual(got, []int{primary}) {
		t.Fatalf("reads still routed to down standby: %v", got)
	}
	c.SetNodeDown(sb, false)
	if got := c.ReadPlacements(sh.ID); len(got) != 2 {
		t.Fatalf("recovered standby not restored: %v", got)
	}
	// a down primary is excluded from reads but still the write target
	c.SetNodeDown(primary, true)
	if got := c.ReadPlacements(sh.ID); !reflect.DeepEqual(got, []int{sb}) {
		t.Fatalf("reads with down primary: %v", got)
	}
	if got, _ := c.PrimaryPlacement(sh.ID); got != primary {
		t.Fatalf("PrimaryPlacement moved to %d without promotion", got)
	}
}

func TestPromoteNodeFlipsRolesAndVersion(t *testing.T) {
	c := replCatalog(t)
	v := c.Version()
	if err := c.PromoteNode(2, 4); err != nil {
		t.Fatal(err)
	}
	if c.Version() == v {
		t.Fatal("promotion did not bump the metadata version")
	}
	for _, sh := range c.Shards("r") {
		rows := c.PlacementRows(sh.ID)
		if rows[0].NodeID == 2 || rows[1].NodeID == 2 {
			for _, p := range rows {
				if p.NodeID == 2 && (p.Role != RoleStandby || !p.Down) {
					t.Fatalf("old primary row not demoted: %+v", p)
				}
				if p.NodeID == 4 && (p.Role != RolePrimary || p.Down) {
					t.Fatalf("promoted standby row wrong: %+v", p)
				}
			}
			if got, _ := c.PrimaryPlacement(sh.ID); got != 4 {
				t.Fatalf("shard %d primary = %d, want 4", sh.ID, got)
			}
		}
	}
	n4, _ := c.Node(4)
	if n4.Standby || n4.StandbyOf != 0 || n4.Down {
		t.Fatalf("promoted node row: %+v", n4)
	}
	n2, _ := c.Node(2)
	if !n2.Down || !n2.Standby || n2.StandbyOf != 4 {
		t.Fatalf("demoted node row: %+v", n2)
	}
	// promoting a non-standby pair is rejected
	if err := c.PromoteNode(3, 4); err == nil {
		t.Fatal("bogus promotion accepted")
	}
}

func TestMovePlacementRewritesStandbyRows(t *testing.T) {
	c := replCatalog(t)
	var sh *Shard
	for _, s := range c.Shards("r") {
		if p, _ := c.PrimaryPlacement(s.ID); p == 2 {
			sh = s
			break
		}
	}
	if err := c.MovePlacement(sh.ID, 2, 3); err != nil {
		t.Fatal(err)
	}
	rows := c.PlacementRows(sh.ID)
	var nodes []int
	for _, p := range rows {
		nodes = append(nodes, p.NodeID)
	}
	if !reflect.DeepEqual(nodes, []int{3, 5}) {
		t.Fatalf("rows after move = %v, want primary 3 + its standby 5", nodes)
	}
}
