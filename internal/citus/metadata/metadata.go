// Package metadata implements the distributed metadata catalog — the
// equivalent of Citus' pg_dist_partition, pg_dist_shard, pg_dist_placement,
// pg_dist_colocation, and pg_dist_node tables. The coordinator owns the
// authoritative copy; in MX mode the catalog is synced to worker nodes so
// any node can plan and coordinate distributed queries (paper §3.2.1).
package metadata

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"citusgo/internal/types"
)

// TableType distinguishes the two Citus table types (§3.3).
type TableType int

const (
	// DistributedTable is hash-partitioned on a distribution column.
	DistributedTable TableType = iota
	// ReferenceTable is replicated to every node.
	ReferenceTable
)

// DistTable is one row of pg_dist_partition.
type DistTable struct {
	Name         string
	Type         TableType
	DistColumn   string // "" for reference tables
	DistColType  types.Type
	ColocationID int
	ShardCount   int
	SchemaSQL    string // CREATE TABLE text used to create shards
}

// Shard is one row of pg_dist_shard.
type Shard struct {
	ID    int64
	Table string
	Index int // shard index within the table (0..ShardCount-1)
	Range types.ShardRange
}

// ShardName returns the physical table name of a shard, e.g.
// "orders_102008" — the name the deparsed task queries reference.
func (s *Shard) ShardName() string { return fmt.Sprintf("%s_%d", s.Table, s.ID) }

// Node is one row of pg_dist_node.
type Node struct {
	ID   int
	Name string
	// IsCoordinator marks the node clients connect to by default.
	IsCoordinator bool
	// HasMetadata reports whether the distributed metadata is synced to
	// this node (MX), letting it coordinate distributed queries itself.
	HasMetadata bool
}

// firstShardID matches the shard id space Citus starts at.
const firstShardID = 102008

// Catalog is the distributed metadata store.
type Catalog struct {
	mu sync.RWMutex

	tables     map[string]*DistTable
	shards     map[string][]*Shard // by table, ordered by shard index
	shardByID  map[int64]*Shard
	placements map[int64][]int // shard id -> node ids (reference tables have many)
	nodes      map[int]*Node

	nextShard      int64
	nextColocation int
	colocationRef  map[int]colocationGroup

	// version is a monotonic counter covering every change that can
	// invalidate a cached distributed plan: table create/drop, placement
	// moves, metadata sync, and explicitly propagated DDL. Cached plans
	// embed the version they were built under and are dropped on mismatch.
	version atomic.Int64
}

type colocationGroup struct {
	shardCount  int
	distColType types.Type
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:         make(map[string]*DistTable),
		shards:         make(map[string][]*Shard),
		shardByID:      make(map[int64]*Shard),
		placements:     make(map[int64][]int),
		nodes:          make(map[int]*Node),
		nextShard:      firstShardID,
		nextColocation: 1,
		colocationRef:  make(map[int]colocationGroup),
	}
}

// AddNode registers a node.
func (c *Catalog) AddNode(n *Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[n.ID] = n
}

// Nodes returns all nodes ordered by id.
func (c *Catalog) Nodes() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WorkerNodes returns the nodes that store shards: all workers, or the
// coordinator itself when it is the only node (the "smallest possible Citus
// cluster is a single server", §3.2).
func (c *Catalog) WorkerNodes() []*Node {
	all := c.Nodes()
	var workers []*Node
	for _, n := range all {
		if !n.IsCoordinator {
			workers = append(workers, n)
		}
	}
	if len(workers) == 0 {
		return all
	}
	return workers
}

// SetHasMetadata flips a node's metadata-sync flag (MX mode).
func (c *Catalog) SetHasMetadata(nodeID int, v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[nodeID]; ok {
		n.HasMetadata = v
	}
	c.version.Add(1)
}

// Version returns the monotonic metadata version cached distributed plans
// are keyed on.
func (c *Catalog) Version() int64 { return c.version.Load() }

// BumpVersion invalidates every cached distributed plan built against the
// current catalog. Called for catalog changes made outside this package,
// e.g. propagated DDL that alters shard schemas without touching placement
// metadata (CREATE INDEX, ALTER TABLE ... ADD COLUMN, TRUNCATE).
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// NewColocationGroup allocates a co-location group id.
func (c *Catalog) NewColocationGroup(shardCount int, distColType types.Type) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextColocation
	c.nextColocation++
	c.colocationRef[id] = colocationGroup{shardCount: shardCount, distColType: distColType}
	return id
}

// FindColocationGroup returns an existing group with matching shard count
// and distribution column type — the automatic co-location the paper
// describes for users who do not pass colocate_with (§3.3.2).
func (c *Catalog) FindColocationGroup(shardCount int, distColType types.Type) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]int, 0, len(c.colocationRef))
	for id := range c.colocationRef {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		g := c.colocationRef[id]
		if g.shardCount == shardCount && g.distColType == distColType {
			return id, true
		}
	}
	return 0, false
}

// AddTable registers a distributed or reference table with its shards and
// placements. For co-located tables the caller passes the same shard ranges
// as the existing table in the group.
func (c *Catalog) AddTable(t *DistTable, shards []*Shard, placements map[int64][]int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[t.Name]; exists {
		return fmt.Errorf("table %q is already distributed", t.Name)
	}
	c.tables[t.Name] = t
	c.shards[t.Name] = shards
	for _, sh := range shards {
		c.shardByID[sh.ID] = sh
		c.placements[sh.ID] = placements[sh.ID]
	}
	c.version.Add(1)
	return nil
}

// RemoveTable drops a table's distributed metadata (undistribute / DROP).
func (c *Catalog) RemoveTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards[name] {
		delete(c.shardByID, sh.ID)
		delete(c.placements, sh.ID)
	}
	delete(c.shards, name)
	delete(c.tables, name)
	c.version.Add(1)
}

// NextShardID allocates n consecutive shard ids.
func (c *Catalog) NextShardID(n int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextShard
	c.nextShard += int64(n)
	return id
}

// Table looks up distributed metadata for a table.
func (c *Catalog) Table(name string) (*DistTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// IsCitusTable reports whether the name is a distributed or reference table.
func (c *Catalog) IsCitusTable(name string) bool {
	_, ok := c.Table(name)
	return ok
}

// Tables returns all distributed-table metadata sorted by name.
func (c *Catalog) Tables() []*DistTable {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*DistTable, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Shards returns a table's shards ordered by shard index.
func (c *Catalog) Shards(table string) []*Shard {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Shard(nil), c.shards[table]...)
}

// ShardByID resolves a shard id.
func (c *Catalog) ShardByID(id int64) (*Shard, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sh, ok := c.shardByID[id]
	return sh, ok
}

// Placements returns the node ids storing a shard (one for distributed
// shards, all nodes for reference shards).
func (c *Catalog) Placements(shardID int64) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]int(nil), c.placements[shardID]...)
}

// PrimaryPlacement returns the first placement node of a shard.
func (c *Catalog) PrimaryPlacement(shardID int64) (int, error) {
	p := c.Placements(shardID)
	if len(p) == 0 {
		return 0, fmt.Errorf("shard %d has no placements", shardID)
	}
	return p[0], nil
}

// MovePlacement reassigns a shard to another node (rebalancer metadata
// update).
func (c *Catalog) MovePlacement(shardID int64, from, to int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := c.placements[shardID]
	for i, n := range nodes {
		if n == from {
			nodes[i] = to
			c.version.Add(1)
			return nil
		}
	}
	return fmt.Errorf("shard %d has no placement on node %d", shardID, from)
}

// ShardForValue routes a distribution column value to its shard by hash.
func (c *Catalog) ShardForValue(table string, v types.Datum) (*Shard, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("table %q is not distributed", table)
	}
	if t.Type == ReferenceTable {
		shards := c.shards[table]
		if len(shards) == 0 {
			return nil, fmt.Errorf("reference table %q has no shard", table)
		}
		return shards[0], nil
	}
	h := types.HashDatum(v)
	for _, sh := range c.shards[table] {
		if sh.Range.Contains(h) {
			return sh, nil
		}
	}
	return nil, fmt.Errorf("no shard covers hash %d of table %q", h, table)
}

// Colocated reports whether two citus tables are in the same co-location
// group (reference tables co-locate with everything — they are replicated
// everywhere).
func (c *Catalog) Colocated(a, b string) bool {
	ta, oka := c.Table(a)
	tb, okb := c.Table(b)
	if !oka || !okb {
		return false
	}
	if ta.Type == ReferenceTable || tb.Type == ReferenceTable {
		return true
	}
	return ta.ColocationID == tb.ColocationID
}

// ShardGroupID identifies the co-located shard group of (colocationID,
// shardIndex) — the unit of transaction connection affinity in the adaptive
// executor.
func ShardGroupID(colocationID, shardIndex int) int64 {
	return int64(colocationID)<<20 | int64(shardIndex)
}
