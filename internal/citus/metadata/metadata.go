// Package metadata implements the distributed metadata catalog — the
// equivalent of Citus' pg_dist_partition, pg_dist_shard, pg_dist_placement,
// pg_dist_colocation, and pg_dist_node tables. The coordinator owns the
// authoritative copy; in MX mode the catalog is synced to worker nodes so
// any node can plan and coordinate distributed queries (paper §3.2.1).
package metadata

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"citusgo/internal/types"
)

// TableType distinguishes the two Citus table types (§3.3).
type TableType int

const (
	// DistributedTable is hash-partitioned on a distribution column.
	DistributedTable TableType = iota
	// ReferenceTable is replicated to every node.
	ReferenceTable
)

// DistTable is one row of pg_dist_partition.
type DistTable struct {
	Name         string
	Type         TableType
	DistColumn   string // "" for reference tables
	DistColType  types.Type
	ColocationID int
	ShardCount   int
	SchemaSQL    string // CREATE TABLE text used to create shards
}

// Shard is one row of pg_dist_shard.
type Shard struct {
	ID    int64
	Table string
	Index int // shard index within the table (0..ShardCount-1)
	Range types.ShardRange
}

// ShardName returns the physical table name of a shard, e.g.
// "orders_102008" — the name the deparsed task queries reference.
func (s *Shard) ShardName() string { return fmt.Sprintf("%s_%d", s.Table, s.ID) }

// Role distinguishes the two placement roles (pg_dist_placement's
// noderole in Citus terms): the primary serves writes and is the WAL
// source; standbys apply the primary's streamed WAL and may serve reads.
type Role int8

const (
	RolePrimary Role = iota
	RoleStandby
)

func (r Role) String() string {
	if r == RoleStandby {
		return "standby"
	}
	return "primary"
}

// Placement is one row of pg_dist_placement: a copy of a shard on a node,
// with its replication role and health state.
type Placement struct {
	NodeID int
	Role   Role
	// Down marks a placement whose node failed health probes or crashed;
	// the executor routes reads around Down placements.
	Down bool
}

// Node is one row of pg_dist_node.
type Node struct {
	ID   int
	Name string
	// IsCoordinator marks the node clients connect to by default.
	IsCoordinator bool
	// HasMetadata reports whether the distributed metadata is synced to
	// this node (MX), letting it coordinate distributed queries itself.
	HasMetadata bool
	// Standby marks a node that hosts only standby placements: it
	// replicates StandbyOf's WAL and is excluded from primary shard
	// placement and from cluster-wide write/DDL fan-out (it receives all
	// of those through the replication stream instead).
	Standby   bool
	StandbyOf int // primary node ID this standby replicates (0 = none)
	// Down marks a node the coordinator's health probes consider failed.
	Down bool
}

// firstShardID matches the shard id space Citus starts at.
const firstShardID = 102008

// Catalog is the distributed metadata store.
type Catalog struct {
	mu sync.RWMutex

	tables     map[string]*DistTable
	shards     map[string][]*Shard // by table, ordered by shard index
	shardByID  map[int64]*Shard
	placements map[int64][]Placement // shard id -> placement rows (primary first)
	nodes      map[int]*Node

	nextShard      int64
	nextColocation int
	colocationRef  map[int]colocationGroup

	// version is a monotonic counter covering every change that can
	// invalidate a cached distributed plan: table create/drop, placement
	// moves, metadata sync, and explicitly propagated DDL. Cached plans
	// embed the version they were built under and are dropped on mismatch.
	version atomic.Int64
}

type colocationGroup struct {
	shardCount  int
	distColType types.Type
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:         make(map[string]*DistTable),
		shards:         make(map[string][]*Shard),
		shardByID:      make(map[int64]*Shard),
		placements:     make(map[int64][]Placement),
		nodes:          make(map[int]*Node),
		nextShard:      firstShardID,
		nextColocation: 1,
		colocationRef:  make(map[int]colocationGroup),
	}
}

// AddNode registers a node.
func (c *Catalog) AddNode(n *Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[n.ID] = n
}

// Nodes returns all nodes ordered by id.
func (c *Catalog) Nodes() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		// copies, not the live rows: role flips mutate nodes under the
		// catalog lock while readers iterate the returned slice
		cp := *n
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WorkerNodes returns the nodes that store primary shards: all non-standby
// workers, or the coordinator itself when it is the only node (the
// "smallest possible Citus cluster is a single server", §3.2).
func (c *Catalog) WorkerNodes() []*Node {
	all := c.Nodes()
	var workers []*Node
	for _, n := range all {
		if !n.IsCoordinator && !n.Standby {
			workers = append(workers, n)
		}
	}
	if len(workers) == 0 {
		return all
	}
	return workers
}

// ActiveNodes returns every non-standby node (coordinator + primary
// workers): the fan-out set for reference-table writes, restore points,
// 2PC recovery, and deadlock detection. Standbys are excluded because
// they receive every durable change through their primary's WAL stream —
// writing to them directly would double-apply.
func (c *Catalog) ActiveNodes() []*Node {
	all := c.Nodes()
	out := make([]*Node, 0, len(all))
	for _, n := range all {
		if !n.Standby {
			out = append(out, n)
		}
	}
	return out
}

// StandbysOf returns the IDs of the standby nodes replicating a primary.
func (c *Catalog) StandbysOf(primaryID int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.standbysOfLocked(primaryID)
}

func (c *Catalog) standbysOfLocked(primaryID int) []int {
	var out []int
	for _, n := range c.nodes {
		if n.Standby && n.StandbyOf == primaryID {
			out = append(out, n.ID)
		}
	}
	sort.Ints(out)
	return out
}

// Node returns a copy of the catalog row for a node ID. A copy, not the
// live pointer: role flips (PromoteNode, SetNodeDown) mutate the row under
// the catalog lock, and handing out the pointer would race every reader.
func (c *Catalog) Node(id int) (Node, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// NodeDown reports whether health probing (or a crash) marked a node down.
func (c *Catalog) NodeDown(id int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.nodes[id]
	return ok && n.Down
}

// SetNodeDown flips a node's health state and mirrors it onto every
// placement row on that node, bumping the metadata version so cached
// plans re-resolve routing against the new health picture.
func (c *Catalog) SetNodeDown(nodeID int, down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[nodeID]
	if !ok || n.Down == down {
		return
	}
	n.Down = down
	for shardID, rows := range c.placements {
		for i := range rows {
			if rows[i].NodeID == nodeID {
				rows[i].Down = down
			}
		}
		c.placements[shardID] = rows
	}
	c.version.Add(1)
}

// SetHasMetadata flips a node's metadata-sync flag (MX mode).
func (c *Catalog) SetHasMetadata(nodeID int, v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[nodeID]; ok {
		n.HasMetadata = v
	}
	c.version.Add(1)
}

// Version returns the monotonic metadata version cached distributed plans
// are keyed on.
func (c *Catalog) Version() int64 { return c.version.Load() }

// BumpVersion invalidates every cached distributed plan built against the
// current catalog. Called for catalog changes made outside this package,
// e.g. propagated DDL that alters shard schemas without touching placement
// metadata (CREATE INDEX, ALTER TABLE ... ADD COLUMN, TRUNCATE).
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// NewColocationGroup allocates a co-location group id.
func (c *Catalog) NewColocationGroup(shardCount int, distColType types.Type) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextColocation
	c.nextColocation++
	c.colocationRef[id] = colocationGroup{shardCount: shardCount, distColType: distColType}
	return id
}

// FindColocationGroup returns an existing group with matching shard count
// and distribution column type — the automatic co-location the paper
// describes for users who do not pass colocate_with (§3.3.2).
func (c *Catalog) FindColocationGroup(shardCount int, distColType types.Type) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]int, 0, len(c.colocationRef))
	for id := range c.colocationRef {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		g := c.colocationRef[id]
		if g.shardCount == shardCount && g.distColType == distColType {
			return id, true
		}
	}
	return 0, false
}

// AddTable registers a distributed or reference table with its shards and
// placements. For co-located tables the caller passes the same shard ranges
// as the existing table in the group. The node IDs in placements are the
// primaries; a standby placement row is added automatically for every
// registered standby of each primary, so replication topology is part of
// the placement metadata from the moment a table is created (rather than
// bolted on afterwards).
func (c *Catalog) AddTable(t *DistTable, shards []*Shard, placements map[int64][]int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[t.Name]; exists {
		return fmt.Errorf("table %q is already distributed", t.Name)
	}
	c.tables[t.Name] = t
	c.shards[t.Name] = shards
	for _, sh := range shards {
		c.shardByID[sh.ID] = sh
		var rows []Placement
		for _, nodeID := range placements[sh.ID] {
			rows = append(rows, Placement{NodeID: nodeID, Role: RolePrimary, Down: c.nodeDownLocked(nodeID)})
			for _, sb := range c.standbysOfLocked(nodeID) {
				rows = append(rows, Placement{NodeID: sb, Role: RoleStandby, Down: c.nodeDownLocked(sb)})
			}
		}
		c.placements[sh.ID] = rows
	}
	c.version.Add(1)
	return nil
}

func (c *Catalog) nodeDownLocked(nodeID int) bool {
	n, ok := c.nodes[nodeID]
	return ok && n.Down
}

// RemoveTable drops a table's distributed metadata (undistribute / DROP).
func (c *Catalog) RemoveTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards[name] {
		delete(c.shardByID, sh.ID)
		delete(c.placements, sh.ID)
	}
	delete(c.shards, name)
	delete(c.tables, name)
	c.version.Add(1)
}

// NextShardID allocates n consecutive shard ids.
func (c *Catalog) NextShardID(n int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextShard
	c.nextShard += int64(n)
	return id
}

// Table looks up distributed metadata for a table.
func (c *Catalog) Table(name string) (*DistTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// IsCitusTable reports whether the name is a distributed or reference table.
func (c *Catalog) IsCitusTable(name string) bool {
	_, ok := c.Table(name)
	return ok
}

// Tables returns all distributed-table metadata sorted by name.
func (c *Catalog) Tables() []*DistTable {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*DistTable, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Shards returns a table's shards ordered by shard index.
func (c *Catalog) Shards(table string) []*Shard {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Shard(nil), c.shards[table]...)
}

// ShardByID resolves a shard id.
func (c *Catalog) ShardByID(id int64) (*Shard, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sh, ok := c.shardByID[id]
	return sh, ok
}

// Placements returns the node ids of a shard's primary-role placements
// (one for distributed shards, all active nodes for reference shards) —
// the write/DDL fan-out set. Standby placements are reached through WAL
// streaming, never addressed directly by writes.
func (c *Catalog) Placements(shardID int64) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for _, p := range c.placements[shardID] {
		if p.Role == RolePrimary {
			out = append(out, p.NodeID)
		}
	}
	return out
}

// PlacementRows returns a copy of every placement row of a shard,
// including standbys and their health state.
func (c *Catalog) PlacementRows(shardID int64) []Placement {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Placement(nil), c.placements[shardID]...)
}

// ReadPlacements returns the node ids a read task may route to: every
// placement (primary or standby) that is not marked Down. The primary is
// always listed first so callers can fall back to it deterministically.
func (c *Catalog) ReadPlacements(shardID int64) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for _, p := range c.placements[shardID] {
		if p.Role == RolePrimary && !p.Down {
			out = append(out, p.NodeID)
		}
	}
	for _, p := range c.placements[shardID] {
		if p.Role == RoleStandby && !p.Down {
			out = append(out, p.NodeID)
		}
	}
	return out
}

// PrimaryPlacement returns the primary placement node of a shard.
func (c *Catalog) PrimaryPlacement(shardID int64) (int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, p := range c.placements[shardID] {
		if p.Role == RolePrimary {
			return p.NodeID, nil
		}
	}
	return 0, fmt.Errorf("shard %d has no primary placement", shardID)
}

// MovePlacement reassigns a shard's primary to another node (rebalancer
// metadata update). Standby rows tied to the old primary's standbys are
// rewritten to the new primary's standbys, since the shard's WAL now
// streams from the new node.
func (c *Catalog) MovePlacement(shardID int64, from, to int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows := c.placements[shardID]
	moved := false
	for i := range rows {
		if rows[i].NodeID == from && rows[i].Role == RolePrimary {
			rows[i].NodeID = to
			rows[i].Down = c.nodeDownLocked(to)
			moved = true
			break
		}
	}
	if !moved {
		return fmt.Errorf("shard %d has no placement on node %d", shardID, from)
	}
	oldStandbys := map[int]bool{}
	for _, sb := range c.standbysOfLocked(from) {
		oldStandbys[sb] = true
	}
	kept := rows[:0]
	for _, p := range rows {
		if p.Role == RoleStandby && oldStandbys[p.NodeID] {
			continue
		}
		kept = append(kept, p)
	}
	for _, sb := range c.standbysOfLocked(to) {
		kept = append(kept, Placement{NodeID: sb, Role: RoleStandby, Down: c.nodeDownLocked(sb)})
	}
	c.placements[shardID] = kept
	c.version.Add(1)
	return nil
}

// PromoteNode flips every (oldPrimary primary, newPrimary standby)
// placement pair: the standby becomes the primary, the crashed old
// primary is demoted to a Down standby row, and the node rows swap
// Standby/StandbyOf. Any remaining standbys of the old primary are
// re-pointed at the new one. The version bump invalidates every cached
// plan built against the old routing — the role flip of failover (§3.7).
func (c *Catalog) PromoteNode(oldPrimary, newPrimary int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	np, ok := c.nodes[newPrimary]
	if !ok || !np.Standby || np.StandbyOf != oldPrimary {
		return fmt.Errorf("node %d is not a standby of node %d", newPrimary, oldPrimary)
	}
	op := c.nodes[oldPrimary]
	np.Standby = false
	np.StandbyOf = 0
	np.Down = false
	if op != nil {
		op.Down = true
		op.Standby = true
		op.StandbyOf = newPrimary
	}
	for _, n := range c.nodes {
		if n.Standby && n.StandbyOf == oldPrimary && n.ID != oldPrimary {
			n.StandbyOf = newPrimary
		}
	}
	for shardID, rows := range c.placements {
		for i := range rows {
			switch {
			case rows[i].NodeID == oldPrimary && rows[i].Role == RolePrimary:
				rows[i].Role = RoleStandby
				rows[i].Down = true
			case rows[i].NodeID == newPrimary && rows[i].Role == RoleStandby:
				rows[i].Role = RolePrimary
				rows[i].Down = false
			}
		}
		c.placements[shardID] = rows
	}
	c.version.Add(1)
	return nil
}

// ShardForValue routes a distribution column value to its shard by hash.
func (c *Catalog) ShardForValue(table string, v types.Datum) (*Shard, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("table %q is not distributed", table)
	}
	if t.Type == ReferenceTable {
		shards := c.shards[table]
		if len(shards) == 0 {
			return nil, fmt.Errorf("reference table %q has no shard", table)
		}
		return shards[0], nil
	}
	h := types.HashDatum(v)
	for _, sh := range c.shards[table] {
		if sh.Range.Contains(h) {
			return sh, nil
		}
	}
	return nil, fmt.Errorf("no shard covers hash %d of table %q", h, table)
}

// Colocated reports whether two citus tables are in the same co-location
// group (reference tables co-locate with everything — they are replicated
// everywhere).
func (c *Catalog) Colocated(a, b string) bool {
	ta, oka := c.Table(a)
	tb, okb := c.Table(b)
	if !oka || !okb {
		return false
	}
	if ta.Type == ReferenceTable || tb.Type == ReferenceTable {
		return true
	}
	return ta.ColocationID == tb.ColocationID
}

// ShardGroupID identifies the co-located shard group of (colocationID,
// shardIndex) — the unit of transaction connection affinity in the adaptive
// executor.
func ShardGroupID(colocationID, shardIndex int) int64 {
	return int64(colocationID)<<20 | int64(shardIndex)
}
