package metadata

import (
	"testing"
	"testing/quick"

	"citusgo/internal/types"
)

func addTestTable(t *testing.T, c *Catalog, name string, colocation int, nodes []int) *DistTable {
	t.Helper()
	const shardCount = 4
	dt := &DistTable{
		Name: name, Type: DistributedTable, DistColumn: "k",
		DistColType: types.Int, ColocationID: colocation, ShardCount: shardCount,
	}
	ranges := types.SplitHashSpace(shardCount)
	base := c.NextShardID(shardCount)
	shards := make([]*Shard, shardCount)
	placements := map[int64][]int{}
	for i := 0; i < shardCount; i++ {
		shards[i] = &Shard{ID: base + int64(i), Table: name, Index: i, Range: ranges[i]}
		placements[shards[i].ID] = []int{nodes[i%len(nodes)]}
	}
	if err := c.AddTable(dt, shards, placements); err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestShardRouting(t *testing.T) {
	c := NewCatalog()
	c.AddNode(&Node{ID: 1, Name: "c", IsCoordinator: true})
	c.AddNode(&Node{ID: 2, Name: "w1"})
	addTestTable(t, c, "t", c.NewColocationGroup(4, types.Int), []int{2})

	// every value routes to exactly one shard, deterministically
	f := func(v int64) bool {
		s1, err1 := c.ShardForValue("t", v)
		s2, err2 := c.ShardForValue("t", v)
		return err1 == nil && err2 == nil && s1.ID == s2.ID &&
			s1.Range.Contains(types.HashDatum(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	if _, err := c.ShardForValue("missing", int64(1)); err == nil {
		t.Fatal("unknown table routed")
	}
}

func TestColocationAcrossTables(t *testing.T) {
	c := NewCatalog()
	c.AddNode(&Node{ID: 1, Name: "c", IsCoordinator: true})
	c.AddNode(&Node{ID: 2, Name: "w1"})
	g := c.NewColocationGroup(4, types.Int)
	addTestTable(t, c, "a", g, []int{2})
	addTestTable(t, c, "b", g, []int{2})
	addTestTable(t, c, "other", c.NewColocationGroup(4, types.Int), []int{2})

	if !c.Colocated("a", "b") {
		t.Fatal("same group must be co-located")
	}
	if c.Colocated("a", "other") {
		t.Fatal("different groups must not be co-located")
	}
	// co-located tables route equal values to equal shard indexes
	f := func(v int64) bool {
		sa, _ := c.ShardForValue("a", v)
		sb, _ := c.ShardForValue("b", v)
		return sa.Index == sb.Index
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReferenceTableColocatesWithEverything(t *testing.T) {
	c := NewCatalog()
	c.AddNode(&Node{ID: 1, Name: "c", IsCoordinator: true})
	addTestTable(t, c, "dist", c.NewColocationGroup(4, types.Int), []int{1})
	ref := &DistTable{Name: "ref", Type: ReferenceTable, ShardCount: 1}
	sh := &Shard{ID: c.NextShardID(1), Table: "ref", Index: 0}
	if err := c.AddTable(ref, []*Shard{sh}, map[int64][]int{sh.ID: {1}}); err != nil {
		t.Fatal(err)
	}
	if !c.Colocated("dist", "ref") || !c.Colocated("ref", "dist") {
		t.Fatal("reference tables co-locate with everything")
	}
	s, err := c.ShardForValue("ref", int64(12345))
	if err != nil || s.ID != sh.ID {
		t.Fatalf("reference routing: %v %v", s, err)
	}
}

func TestFindColocationGroup(t *testing.T) {
	c := NewCatalog()
	g1 := c.NewColocationGroup(32, types.Int)
	g2 := c.NewColocationGroup(32, types.Text)
	if got, ok := c.FindColocationGroup(32, types.Int); !ok || got != g1 {
		t.Fatalf("find int group: %d %v", got, ok)
	}
	if got, ok := c.FindColocationGroup(32, types.Text); !ok || got != g2 {
		t.Fatalf("find text group: %d %v", got, ok)
	}
	if _, ok := c.FindColocationGroup(64, types.Int); ok {
		t.Fatal("wrong shard count matched")
	}
}

func TestPlacementMoves(t *testing.T) {
	c := NewCatalog()
	c.AddNode(&Node{ID: 1, Name: "c", IsCoordinator: true})
	c.AddNode(&Node{ID: 2, Name: "w1"})
	c.AddNode(&Node{ID: 3, Name: "w2"})
	addTestTable(t, c, "t", c.NewColocationGroup(4, types.Int), []int{2})
	sh := c.Shards("t")[0]
	if err := c.MovePlacement(sh.ID, 2, 3); err != nil {
		t.Fatal(err)
	}
	nodeID, err := c.PrimaryPlacement(sh.ID)
	if err != nil || nodeID != 3 {
		t.Fatalf("after move: %d %v", nodeID, err)
	}
	if err := c.MovePlacement(sh.ID, 2, 3); err == nil {
		t.Fatal("moving from the wrong source must fail")
	}
}

func TestWorkerNodesFallsBackToCoordinator(t *testing.T) {
	c := NewCatalog()
	c.AddNode(&Node{ID: 1, Name: "c", IsCoordinator: true})
	w := c.WorkerNodes()
	if len(w) != 1 || w[0].ID != 1 {
		t.Fatalf("single-node cluster: %v", w)
	}
	c.AddNode(&Node{ID: 2, Name: "w1"})
	w = c.WorkerNodes()
	if len(w) != 1 || w[0].ID != 2 {
		t.Fatalf("with workers: %v", w)
	}
}

func TestRemoveTable(t *testing.T) {
	c := NewCatalog()
	c.AddNode(&Node{ID: 1, Name: "c", IsCoordinator: true})
	addTestTable(t, c, "gone", c.NewColocationGroup(4, types.Int), []int{1})
	sh := c.Shards("gone")[0]
	c.RemoveTable("gone")
	if c.IsCitusTable("gone") {
		t.Fatal("metadata survived removal")
	}
	if _, ok := c.ShardByID(sh.ID); ok {
		t.Fatal("shard survived removal")
	}
}

func TestShardNameAndGroupID(t *testing.T) {
	sh := &Shard{ID: 102008, Table: "orders"}
	if sh.ShardName() != "orders_102008" {
		t.Fatalf("shard name: %s", sh.ShardName())
	}
	if ShardGroupID(1, 5) == ShardGroupID(2, 5) {
		t.Fatal("group ids must differ across colocation groups")
	}
	if ShardGroupID(1, 5) == ShardGroupID(1, 6) {
		t.Fatal("group ids must differ across shard indexes")
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	c := NewCatalog()
	c.AddNode(&Node{ID: 1, Name: "c", IsCoordinator: true})
	addTestTable(t, c, "dup", c.NewColocationGroup(4, types.Int), []int{1})
	dt := &DistTable{Name: "dup", Type: DistributedTable}
	if err := c.AddTable(dt, nil, nil); err == nil {
		t.Fatal("duplicate distribution accepted")
	}
}
