package citus_test

import (
	"fmt"
	"testing"

	"citusgo/internal/citus"
	"citusgo/internal/cluster"
)

// topnCluster builds a 2-worker cluster, optionally with the TopN pushdown
// ablated off, and loads a distributed events table whose GROUP BY column
// (bucket) is not the distribution column — the partial-aggregate merge
// path, where workers previously always shipped every group.
func topnCluster(t *testing.T, disable bool) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Workers:    2,
		ShardCount: 8,
		Citus:      citus.Config{DeadlockInterval: -1, DisableTopNPushdown: disable},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE events (tenant bigint, bucket bigint, val double precision)")
	mustExec(t, s, "SELECT create_distributed_table('events', 'tenant')")
	for tenant := 0; tenant < 20; tenant++ {
		for b := 0; b < 10; b++ {
			mustExec(t, s, fmt.Sprintf("INSERT INTO events VALUES (%d, %d, %d.5)",
				tenant, b, tenant*10+b))
		}
	}
	return c
}

// TestTopNPushdownParity runs the same grouped TopN queries with the
// pushdown on and off and expects identical rows, while the counters prove
// the on-cluster actually routed through the worker-side bounded heap and
// shipped O(workers × k) rows to the coordinator merge.
func TestTopNPushdownParity(t *testing.T) {
	on := topnCluster(t, false)
	off := topnCluster(t, true)
	sOn, sOff := on.Session(), off.Session()

	queries := []string{
		`SELECT bucket, count(*), sum(val) FROM events GROUP BY bucket ORDER BY bucket LIMIT 3`,
		`SELECT bucket, count(*) FROM events GROUP BY bucket ORDER BY bucket DESC LIMIT 4`,
		`SELECT bucket, avg(val) FROM events GROUP BY bucket ORDER BY 1 LIMIT 3 OFFSET 2`,
		`SELECT bucket AS b, min(val) FROM events GROUP BY bucket ORDER BY b LIMIT 2`,
	}
	for _, q := range queries {
		preOn := statCounters(t, sOn)
		resOn := mustExec(t, sOn, q)
		postOn := statCounters(t, sOn)

		preOff := statCounters(t, sOff)
		resOff := mustExec(t, sOff, q)
		postOff := statCounters(t, sOff)

		if got, want := rowsText(resOn), rowsText(resOff); got != want {
			t.Fatalf("%s:\npushdown:\n%s\nbaseline:\n%s", q, got, want)
		}
		if d := familyDelta(preOn, postOn, "citus_topn_pushdowns_total"); d == 0 {
			t.Errorf("%s: expected a TopN pushdown, counter unchanged", q)
		}
		if d := familyDelta(preOff, postOff, "citus_topn_pushdowns_total"); d != 0 {
			t.Errorf("%s: ablated cluster still pushed down (%d)", q, d)
		}
		mergedOn := familyDelta(preOn, postOn, "citus_merge_rows_total")
		mergedOff := familyDelta(preOff, postOff, "citus_merge_rows_total")
		// 10 groups land on (almost surely) both workers: without the
		// pushdown the merge collects ~2×10 rows, with it at most
		// workers × k.
		if mergedOn >= mergedOff {
			t.Errorf("%s: merge rows with pushdown (%d) not below baseline (%d)",
				q, mergedOn, mergedOff)
		}
		if d := familyDelta(preOn, postOn, "vec_topn_pruned_rows_total"); d == 0 {
			t.Errorf("%s: workers pruned no rows", q)
		}
	}
}

// TestTopNPushdownIneligible pins the shapes that must NOT ship
// ORDER BY/LIMIT to the workers: aggregate sort keys (a partial says
// nothing about global rank), HAVING (coordinator-side filtering could
// consume the worker's whole top-k), and parameterized limits.
func TestTopNPushdownIneligible(t *testing.T) {
	c := topnCluster(t, false)
	s := c.Session()

	queries := []struct{ name, q string }{
		{"order_by_agg", `SELECT bucket, count(*) FROM events GROUP BY bucket ORDER BY count(*) DESC, bucket LIMIT 3`},
		{"order_by_agg_position", `SELECT bucket, sum(val) FROM events GROUP BY bucket ORDER BY 2 DESC, 1 LIMIT 3`},
		{"having", `SELECT bucket, count(*) FROM events GROUP BY bucket HAVING count(*) > 19 ORDER BY bucket LIMIT 3`},
		{"no_limit", `SELECT bucket, count(*) FROM events GROUP BY bucket ORDER BY bucket`},
	}
	for _, tc := range queries {
		pre := statCounters(t, s)
		res := mustExec(t, s, tc.q)
		post := statCounters(t, s)
		if d := familyDelta(pre, post, "citus_topn_pushdowns_total"); d != 0 {
			t.Errorf("%s: pushed down an ineligible shape (%d)", tc.name, d)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: no rows", tc.name)
		}
	}

	// and the ineligible shapes still answer correctly
	res := mustExec(t, s, `SELECT bucket, count(*) FROM events GROUP BY bucket ORDER BY count(*) DESC, bucket LIMIT 2`)
	expectRows(t, res, "0|20\n1|20")
}

// TestTopNPushdownPlanCacheInteraction re-executes a pushed-down prepared
// shape to make sure the cached distributed plan keeps the worker-side
// bound across executions.
func TestTopNPushdownPlanCacheInteraction(t *testing.T) {
	c := topnCluster(t, false)
	s := c.Session()
	q := `SELECT bucket, count(*) FROM events GROUP BY bucket ORDER BY bucket LIMIT 2`
	want := "0|20\n1|20"
	for i := 0; i < 3; i++ {
		res := mustExec(t, s, q)
		expectRows(t, res, want)
	}
}
