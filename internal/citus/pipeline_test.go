package citus_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"citusgo/internal/citus"
	"citusgo/internal/cluster"
	"citusgo/internal/fault"
	"citusgo/internal/obs"
	"citusgo/internal/types"
)

// pipelineCluster boots a cluster whose shared connection limit forces
// several tasks per connection, so multi-shard fan-out actually exercises
// pipelined windows.
func pipelineCluster(t *testing.T, cfg citus.Config) *cluster.Cluster {
	t.Helper()
	cfg.DeadlockInterval = -1
	cfg.RecoveryInterval = -1
	c, err := cluster.New(cluster.Config{
		Workers:    2,
		ShardCount: 16,
		Citus:      cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestPipelineStressMisdelivery is the -race stress test for the pipelined
// wire protocol: concurrent multi-shard fan-out queries and point reads
// run over connections that carry ≥4 tasks per pipelined window (shared
// connection limit 2 against 8 shards per worker), while a DDL loop keeps
// bumping the worker schema versions (stale-plan rejections mid-window)
// and injected drop-conn faults kill connections mid-pipeline. Correctness
// conditions: every response lands on the request that issued it (a point
// read must see exactly its own key's value — a misdelivered response
// fails this), no stale plan executes, and teardown is clean.
func TestPipelineStressMisdelivery(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	c := pipelineCluster(t, citus.Config{MaxSharedPoolSize: 2, PipelineWindow: 8})
	s := c.Session()

	mustExec(t, s, "CREATE TABLE ps (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('ps', 'k')")
	mustExec(t, s, "CREATE TABLE ps_ddl (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('ps_ddl', 'k')")

	const keys = 160
	rows := make([]types.Row, 0, keys)
	wantSum := int64(0)
	for k := int64(0); k < keys; k++ {
		rows = append(rows, types.Row{k, k * 7})
		wantSum += k * 7
	}
	if _, err := s.CopyFrom("ps", []string{"k", "v"}, rows); err != nil {
		t.Fatal(err)
	}

	batchesBefore := obs.Default().Snapshot().Sum("wire_pipeline_batches_total")

	const readers = 6
	const minIters = 40
	const maxIters = 5000
	var ddlDone atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, readers+2)

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := c.Session()
			for i := 1; i <= maxIters; i++ {
				// Full fan-out: 16 shard tasks over ≤2 connections per
				// worker — each connection's queue rides pipelined windows.
				res, err := sess.Exec("SELECT count(*), sum(v) FROM ps")
				if err != nil {
					errCh <- fmt.Errorf("reader %d iter %d fan-out: %w", id, i, err)
					return
				}
				if cnt := res.Rows[0][0].(int64); cnt != keys {
					errCh <- fmt.Errorf("reader %d iter %d: count %d, want %d", id, i, cnt, keys)
					return
				}
				if sum := res.Rows[0][1].(int64); sum != wantSum {
					errCh <- fmt.Errorf("reader %d iter %d: sum %d, want %d", id, i, sum, wantSum)
					return
				}
				// Point read with a per-reader key: the answer is a pure
				// function of the key, so a response delivered to the wrong
				// request is caught immediately.
				k := int64((i*readers + id) % keys)
				res, err = sess.Exec("SELECT v FROM ps WHERE k = $1", k)
				if err != nil {
					errCh <- fmt.Errorf("reader %d iter %d point: %w", id, i, err)
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0].(int64) != k*7 {
					errCh <- fmt.Errorf("reader %d iter %d: key %d read %v, want %d (response misdelivery?)",
						id, i, k, res.Rows, k*7)
					return
				}
				if i >= minIters && ddlDone.Load() {
					return
				}
			}
		}(w)
	}

	// DDL loop: each CREATE INDEX bumps worker schema versions, so
	// prepared executions inside in-flight pipelined windows hit the
	// plan-invalid rejection and must re-prepare, never run stale.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer ddlDone.Store(true)
		sess := c.Session()
		for i := 0; i < 12; i++ {
			if _, err := sess.Exec(fmt.Sprintf("CREATE INDEX ps_stress_%d ON ps_ddl (v)", i)); err != nil {
				errCh <- fmt.Errorf("ddl %d: %w", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Fault loop: periodically kill one connection mid-pipeline (recv of a
	// prepared point-read execution). Readers must absorb it through the
	// refresh-and-retry path; keying on exec_prepared keeps the DDL
	// writes out of the blast radius (writes are never retried).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8 && !ddlDone.Load(); i++ {
			fault.Arm(fault.Rule{
				Point: fault.PointWireRecv, Key: "exec_prepared",
				Action: fault.ActDropConn, Count: 1,
			})
			time.Sleep(3 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	if batchesAfter := obs.Default().Snapshot().Sum("wire_pipeline_batches_total"); batchesAfter <= batchesBefore {
		t.Fatalf("stress run never flushed a pipelined batch (%d -> %d)", batchesBefore, batchesAfter)
	}
}

// TestBrokenConnNeverReturnsToPool is the regression test for the
// transportFailure audit: any task that fails with a transport-level
// ConnError — read retries exhausted, a failed write, or a poisoned
// pipelined window — must leave its connection marked broken so every
// disposition path discards it. Recycling it would hand later checkouts a
// closed or desynced connection.
func TestBrokenConnNeverReturnsToPool(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	c := pipelineCluster(t, citus.Config{DisablePlanCache: true})
	s := c.Session()
	mustExec(t, s, "CREATE TABLE bc (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('bc', 'k')")
	for i := 0; i < 8; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO bc (k, v) VALUES (%d, 0)", i))
	}

	// A write task whose response is lost: not retryable, and the
	// connection is no longer trustworthy.
	discardsBefore := obs.Default().Snapshot().Sum("pool_discards_total")
	fault.Arm(fault.Rule{Point: fault.PointWireRecv, Key: "query", Action: fault.ActError, Count: 1})
	if _, err := s.Exec("UPDATE bc SET v = 1 WHERE k = 0"); err == nil {
		t.Fatal("write with injected recv failure must error")
	}
	fault.Reset()
	discardsAfter := obs.Default().Snapshot().Sum("pool_discards_total")
	if discardsAfter <= discardsBefore {
		t.Fatalf("broken connection was not discarded (discards %d -> %d)", discardsBefore, discardsAfter)
	}
	for nodeID := 2; nodeID <= 3; nodeID++ {
		total, idle := c.Coordinator().PoolStats(nodeID)
		if total != idle {
			t.Fatalf("node %d: %d connections checked out after statement end (total %d, idle %d)",
				nodeID, total-idle, total, idle)
		}
	}
	// The pool must hand out working connections afterwards.
	res := mustExec(t, s, "SELECT count(*) FROM bc")
	if res.Rows[0][0].(int64) != 8 {
		t.Fatalf("rows after discard: %v", res.Rows)
	}

	// Same audit for the COPY path: a stream whose COPY hits a transport
	// failure must discard its connection, not Put it back.
	discardsBefore = obs.Default().Snapshot().Sum("pool_discards_total")
	fault.Arm(fault.Rule{Point: fault.PointWireRecv, Key: "copy", Action: fault.ActError, Count: 1})
	rows := make([]types.Row, 0, 16)
	for k := int64(100); k < 116; k++ {
		rows = append(rows, types.Row{k, k})
	}
	if _, err := s.CopyFrom("bc", []string{"k", "v"}, rows); err == nil {
		t.Fatal("COPY with injected recv failure must error")
	}
	fault.Reset()
	discardsAfter = obs.Default().Snapshot().Sum("pool_discards_total")
	if discardsAfter <= discardsBefore {
		t.Fatalf("COPY stream's broken connection was not discarded (discards %d -> %d)", discardsBefore, discardsAfter)
	}
	if !strings.Contains(mustExec(t, s, "SELECT count(*) FROM bc").Tag, "SELECT") {
		t.Fatal("cluster unusable after COPY failure")
	}
}
