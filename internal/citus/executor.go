package citus

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"citusgo/internal/engine"
	"citusgo/internal/fault"
	"citusgo/internal/obs"
	"citusgo/internal/pool"
	"citusgo/internal/types"
	"citusgo/internal/wire"
)

// Adaptive executor metrics (§3.6.1). Task counters split read/write;
// connection opens are labeled by target node.
var (
	metTasksVec = obs.Default().Counter("executor_tasks_total",
		"tasks placed by the adaptive executor, by task kind", "kind")
	metTasksRead     = metTasksVec.With("read")
	metTasksWrite    = metTasksVec.With("write")
	metConnsOpenedBy = obs.Default().Counter("executor_conns_opened_total",
		"connections the adaptive executor opened beyond its pinned set, by target node", "node")
	metSlowStartRounds = obs.Default().Counter("executor_slow_start_rounds_total",
		"slow-start ramp rounds elapsed while tasks were pending").With()
	metConnWaits = obs.Default().Counter("executor_conn_waits_total",
		"waits for a connection slot under the shared connection limit").With()
	metTaskLatency = obs.Default().Histogram("executor_task_latency_ns",
		"per-task execution latency in nanoseconds", nil).With()
	metTaskRetries = obs.Default().Counter("executor_task_retries_total",
		"read-only task retries after transient connection failures").With()
)

// Bounded retry policy for transient connection failures on idempotent
// (read-only, non-transactional) tasks: up to maxTaskAttempts total
// attempts with doubling backoff. Distinct from the plan-invalid
// re-prepare retry inside queryTask, which may retry even writes because
// the worker rejected before executing anything.
const (
	maxTaskAttempts  = 4
	taskRetryBackoff = 500 * time.Microsecond
)

// task is one query against one shard placement — the unit of distributed
// execution (§3.5: "a distributed query plan consists of a set of tasks").
type task struct {
	nodeID     int
	shardGroup int64 // co-located shard group for connection affinity; -1 none
	sql        string
	params     []types.Datum
	isWrite    bool
	cache      string // plan-cache disposition for tracing: "hit" or "" (miss)
}

// executeTasks is the adaptive executor (§3.6.1). It runs tasks over the
// session's per-worker connections, combining:
//
//   - slow start: one connection per worker initially, allowing one more
//     new connection per SlowStartInterval, so short index lookups finish
//     on a single connection while long analytical tasks fan out;
//   - the shared connection limit, enforced by the per-node pools;
//   - task↔connection affinity: within a transaction, a co-located shard
//     group always reuses the connection that first accessed it, keeping
//     uncommitted writes and locks visible.
func (n *Node) executeTasks(s *engine.Session, tasks []task) ([]*engine.Result, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	st := n.state(s)

	writeTasks := 0
	for i := range tasks {
		if tasks[i].isWrite {
			writeTasks++
			if tasks[i].shardGroup >= 0 {
				n.fenceWait(tasks[i].shardGroup)
			}
		}
	}
	metTasksWrite.Add(int64(writeTasks))
	metTasksRead.Add(int64(len(tasks) - writeTasks))
	// Transaction blocks are needed inside an explicit transaction (for
	// locks/visibility across statements) and for multi-shard writes in a
	// single statement (atomicity via 2PC at commit).
	txnMode := s.InTransaction() || writeTasks > 1
	if txnMode {
		n.registerTxnCallbacks(s, st)
	}

	// Fast path: a single task outside a multi-connection transaction
	// round-trips on one connection with minimal overhead.
	results := make([]*engine.Result, len(tasks))

	byNode := make(map[int][]int) // node -> task indexes
	for i := range tasks {
		byNode[tasks[i].nodeID] = append(byNode[tasks[i].nodeID], i)
	}

	var wg sync.WaitGroup
	var firstErr atomic.Value
	for nodeID, idxs := range byNode {
		wg.Add(1)
		go func(nodeID int, idxs []int) {
			defer wg.Done()
			if err := n.runNodeTasks(s, st, nodeID, idxs, tasks, results, txnMode); err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}(nodeID, idxs)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}
	return results, nil
}

// runNodeTasks schedules one worker node's tasks across its connections.
func (n *Node) runNodeTasks(s *engine.Session, st *sessState, nodeID int, idxs []int, tasks []task, results []*engine.Result, txnMode bool) error {
	p, err := n.poolFor(nodeID)
	if err != nil {
		return err
	}

	// Split tasks into per-connection assigned queues (transaction
	// affinity) and the general pool for this worker.
	st.mu.Lock()
	assigned := make(map[*workerConn][]int)
	var general []int
	for _, i := range idxs {
		if g := tasks[i].shardGroup; g >= 0 {
			if wc, ok := st.groupConn[g]; ok && wc.nodeID == nodeID {
				assigned[wc] = append(assigned[wc], i)
				continue
			}
		}
		general = append(general, i)
	}
	pinned := append([]*workerConn(nil), st.conns[nodeID]...)
	st.mu.Unlock()

	var remaining atomic.Int64
	remaining.Store(int64(len(general)))
	taskCh := make(chan int, len(general))
	for _, i := range general {
		taskCh <- i
	}
	close(taskCh)

	var mu sync.Mutex
	var runErr error
	var aborted atomic.Bool
	noteErr := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		aborted.Store(true)
	}

	runOn := func(wc *workerConn, private []int) {
		for _, i := range private {
			if aborted.Load() {
				return
			}
			if err := n.runTask(s, st, wc, &tasks[i], results, i, txnMode); err != nil {
				noteErr(err)
				return
			}
		}
		for i := range taskCh {
			if aborted.Load() {
				remaining.Add(-1)
				continue
			}
			err := n.runTask(s, st, wc, &tasks[i], results, i, txnMode)
			remaining.Add(-1)
			if err != nil {
				noteErr(err)
			}
		}
	}

	var wg sync.WaitGroup
	var newConns []*workerConn
	var newMu sync.Mutex
	startConn := func(wc *workerConn, private []int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runOn(wc, private)
		}()
	}

	// Existing pinned/assigned connections start immediately.
	started := 0
	startedSet := map[*workerConn]bool{}
	for wc, private := range assigned {
		startConn(wc, private)
		startedSet[wc] = true
		started++
	}
	for _, wc := range pinned {
		if !startedSet[wc] {
			startConn(wc, nil)
			startedSet[wc] = true
			started++
		}
	}

	openNew := func() bool {
		wc, err := n.acquireConn(p, nodeID, started == 0)
		if err != nil {
			if errors.Is(err, pool.ErrLimit) {
				return false
			}
			noteErr(err)
			return false
		}
		metConnsOpenedBy.With(strconv.Itoa(nodeID)).Inc()
		newMu.Lock()
		newConns = append(newConns, wc)
		newMu.Unlock()
		startConn(wc, nil)
		started++
		return true
	}

	// Slow start: n=1 connection may be opened now; every interval the
	// allowance grows by one, and we open min(allowance, pending tasks).
	// A negative interval disables the ramp entirely (instant fan-out, the
	// ablation baseline).
	if started == 0 && (len(general) > 0 || txnMode) {
		openNew()
	}
	if n.Cfg.SlowStartInterval < 0 {
		for started < len(general) && !aborted.Load() {
			if !openNew() {
				break
			}
		}
	}
	stopRamp := make(chan struct{})
	var rampWg sync.WaitGroup
	if n.Cfg.SlowStartInterval > 0 && len(general) > 1 {
		rampWg.Add(1)
		go func() {
			defer rampWg.Done()
			allowance := 1
			ticker := time.NewTicker(n.Cfg.SlowStartInterval)
			defer ticker.Stop()
			for {
				select {
				case <-stopRamp:
					return
				case <-ticker.C:
					allowance++
					metSlowStartRounds.Inc()
					pendingTasks := int(remaining.Load())
					want := allowance
					if pendingTasks-started < want {
						want = pendingTasks - started
					}
					for k := 0; k < want; k++ {
						if aborted.Load() || !openNew() {
							break
						}
					}
					if remaining.Load() == 0 {
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stopRamp)
	rampWg.Wait()

	// Connection disposition: transactional connections pin to the
	// session; others return to the shared pool.
	newMu.Lock()
	opened := newConns
	newMu.Unlock()
	st.mu.Lock()
	for _, wc := range opened {
		if wc.inTxn {
			st.conns[nodeID] = append(st.conns[nodeID], wc)
		} else if wc.broken {
			st.mu.Unlock()
			p.Discard(wc.conn)
			st.mu.Lock()
		} else {
			st.mu.Unlock()
			p.Put(wc.conn)
			st.mu.Lock()
		}
	}
	st.mu.Unlock()

	mu.Lock()
	defer mu.Unlock()
	return runErr
}

// acquireConn gets a connection from the pool, waiting under the shared
// limit only when the caller has no connection at all (must ≥ 1 to make
// progress; the wait is how connection slots converge to a fair division
// between concurrent distributed queries, §3.6.1).
func (n *Node) acquireConn(p *pool.NodePool, nodeID int, mustHave bool) (*workerConn, error) {
	for {
		c, err := p.Get()
		if err == nil {
			return &workerConn{conn: c, nodeID: nodeID, pool: p}, nil
		}
		if !errors.Is(err, pool.ErrLimit) || !mustHave {
			return nil, err
		}
		metConnWaits.Inc()
		time.Sleep(200 * time.Microsecond)
	}
}

// runTask executes one task on one connection, opening a remote
// transaction block first when in transactional mode.
func (n *Node) runTask(s *engine.Session, st *sessState, wc *workerConn, t *task, results []*engine.Result, i int, txnMode bool) error {
	if txnMode && !wc.inTxn {
		if _, err := wc.conn.Query("BEGIN"); err != nil {
			wc.broken = true
			return fmt.Errorf("opening transaction block on node %d: %w", wc.nodeID, err)
		}
		if _, err := wc.conn.Query(fmt.Sprintf("SET citus.dist_txn_id = '%s'", st.distID)); err != nil {
			wc.broken = true
			return err
		}
		wc.inTxn = true
	}
	// One child span per task (§3.6.1 meets the trace model): labeled with
	// the shard group, target node, plan-cache disposition, and — after the
	// round trip — the attempt count and row count. The trace context is
	// stamped onto the connection so the worker's engine spans (parse, plan,
	// execute, lock_wait, wal_fsync) nest under this task span.
	sp := n.Eng.Tracer.StartSpan(s.TraceID, s.SpanID, "task", t.sql)
	if sp != nil {
		sp.SetAttr("shard_group", strconv.FormatInt(t.shardGroup, 10))
		sp.SetAttr("node", strconv.Itoa(t.nodeID))
		cache := t.cache
		if cache == "" {
			cache = "miss"
		}
		sp.SetAttr("plancache", cache)
		wc.conn.SetTrace(s.TraceID, sp.SpanID())
	}
	start := time.Now()
	res, attempts, err := n.queryTask(wc, t)
	// Transient transport failures (connection reset, dropped response) on
	// idempotent work retry on a fresh connection with doubling backoff.
	// Only read-only tasks outside a transaction block qualify: a write or
	// an in-transaction task may have taken effect on the worker before
	// the response was lost, so re-running it is not safe.
	if err != nil && !t.isWrite && !txnMode && wc.pool != nil {
		for wire.IsTransient(err) && attempts < maxTaskAttempts {
			time.Sleep(taskRetryBackoff << (attempts - 1))
			if rerr := n.refreshConn(wc); rerr != nil {
				break
			}
			if sp != nil {
				wc.conn.SetTrace(s.TraceID, sp.SpanID())
			}
			metTaskRetries.Inc()
			attempts++
			res, _, err = n.queryTask(wc, t)
		}
	}
	metTaskLatency.ObserveSince(start)
	if sp != nil {
		sp.SetAttr("attempt", strconv.Itoa(attempts))
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			sp.SetAttr("rows", strconv.Itoa(len(res.Rows)))
		}
		sp.Finish()
		wc.conn.ClearTrace()
	}
	if err != nil {
		return fmt.Errorf("task on node %d failed: %w", wc.nodeID, err)
	}
	results[i] = res
	if t.isWrite {
		wc.wrote = true
	}
	if txnMode && t.shardGroup >= 0 {
		st.mu.Lock()
		if _, ok := st.groupConn[t.shardGroup]; !ok {
			st.groupConn[t.shardGroup] = wc
		}
		st.mu.Unlock()
	}
	return nil
}

// refreshConn swaps a worker connection's transport for a freshly dialed
// one from the originating pool (the old connection is presumed broken).
// The new connection is acquired before the old one is discarded so a
// failed dial leaves wc untouched — the normal broken-connection
// disposition then discards it exactly once.
func (n *Node) refreshConn(wc *workerConn) error {
	c, err := wc.pool.Get()
	if err != nil {
		wc.broken = true
		return err
	}
	wc.pool.Discard(wc.conn)
	wc.conn = c
	wc.broken = false
	return nil
}

// queryTask ships one task to its worker. Parameterized tasks use the
// prepared-statement protocol so each (connection, statement shape) pair
// parses at most once worker-side; subsequent executions ship only the
// statement name and parameters. DDL and other parameterless one-off
// statements use plain Query. A plan-invalid rejection (worker DDL bumped
// its schema version since Prepare) is returned before the worker executes
// anything, so re-preparing and retrying once is safe even for writes.
// The second return value is the number of execution attempts (2 after a
// plan-invalid retry), recorded on the task span.
func (n *Node) queryTask(wc *workerConn, t *task) (*engine.Result, int, error) {
	// executor.task, keyed "read"/"write": fails or delays a task at the
	// moment of issue, before anything reaches the wire.
	kind := "read"
	if t.isWrite {
		kind = "write"
	}
	if err := fault.CheckKey(fault.PointExecutorTask, kind); err != nil {
		return nil, 1, err
	}
	if n.Cfg.DisablePlanCache || len(t.params) == 0 {
		res, err := wc.conn.Query(t.sql, t.params...)
		return res, 1, err
	}
	name := preparedName(t.sql)
	if wc.conn.PreparedSQL(name) != t.sql {
		if err := wc.conn.Prepare(name, t.sql); err != nil {
			return nil, 1, err
		}
	}
	attempts := 1
	res, err := wc.conn.ExecutePrepared(name, t.params...)
	if wire.IsPlanInvalid(err) {
		attempts++
		if perr := wc.conn.Prepare(name, t.sql); perr != nil {
			return nil, attempts, perr
		}
		res, err = wc.conn.ExecutePrepared(name, t.params...)
	}
	return res, attempts, err
}

// preparedName derives a stable statement name from the task SQL. A hash
// collision is harmless: PreparedSQL compares the full text, so a colliding
// shape just re-Prepares (the server overwrites the name).
func preparedName(sqlText string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sqlText))
	return "cs_" + strconv.FormatUint(h.Sum64(), 16)
}
