package citus

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"citusgo/internal/engine"
	"citusgo/internal/fault"
	"citusgo/internal/obs"
	"citusgo/internal/pool"
	"citusgo/internal/trace"
	"citusgo/internal/types"
	"citusgo/internal/wire"
)

// Adaptive executor metrics (§3.6.1). Task counters split read/write;
// connection opens are labeled by target node.
var (
	metTasksVec = obs.Default().Counter("executor_tasks_total",
		"tasks placed by the adaptive executor, by task kind", "kind")
	metTasksRead     = metTasksVec.With("read")
	metTasksWrite    = metTasksVec.With("write")
	metConnsOpenedBy = obs.Default().Counter("executor_conns_opened_total",
		"connections the adaptive executor opened beyond its pinned set, by target node", "node")
	metSlowStartRounds = obs.Default().Counter("executor_slow_start_rounds_total",
		"slow-start ramp rounds elapsed while tasks were pending").With()
	metConnWaits = obs.Default().Counter("executor_conn_waits_total",
		"waits for a connection slot under the shared connection limit").With()
	metTaskLatency = obs.Default().Histogram("executor_task_latency_ns",
		"per-task execution latency in nanoseconds", nil).With()
	metTaskLatencyNode = obs.Default().Histogram("executor_task_latency_by_node_ns",
		"per-task execution latency in nanoseconds, by placement node", nil, "node")
	metTaskRetries = obs.Default().Counter("executor_task_retries_total",
		"read-only task retries after transient connection failures").With()
	// Replica-routing split: every read task with placement candidates is
	// counted by where it actually ran. bench-smoke asserts this split so
	// replica routing cannot silently bit-rot (ablation A6).
	metRoutedReadsVec = obs.Default().Counter("executor_routed_reads_total",
		"read tasks routed by placement role", "placement")
	metPrimaryReads     = metRoutedReadsVec.With("primary")
	metReplicaReads     = metRoutedReadsVec.With("standby")
	metReplicaFallbacks = obs.Default().Counter("executor_replica_fallbacks_total",
		"replica reads that failed on the standby and were retried on the primary").With()
)

// Bounded retry policy for transient connection failures on idempotent
// (read-only, non-transactional) tasks: up to maxTaskAttempts total
// attempts with doubling backoff. Distinct from the plan-invalid
// re-prepare retry inside queryTask, which may retry even writes because
// the worker rejected before executing anything.
const (
	maxTaskAttempts  = 4
	taskRetryBackoff = 500 * time.Microsecond
)

// task is one query against one shard placement — the unit of distributed
// execution (§3.5: "a distributed query plan consists of a set of tasks").
type task struct {
	nodeID     int
	shardGroup int64 // co-located shard group for connection affinity; -1 none
	sql        string
	params     []types.Datum
	isWrite    bool
	isDDL      bool   // shard DDL: fans out like a write for sync-replication waits
	cache      string // plan-cache disposition for tracing: "hit" or "" (miss)
	// readNodes are the healthy placement candidates of a read task,
	// primary first (metadata.ReadPlacements). The executor picks the
	// actual target at execution time — round-robin across candidates for
	// autocommit reads, the primary inside transactions (read-your-writes).
	// readNodes[0] is also the fallback when a replica read fails.
	readNodes []int
}

// executeTasks is the adaptive executor (§3.6.1). It runs tasks over the
// session's per-worker connections, combining:
//
//   - slow start: one connection per worker initially, allowing one more
//     new connection per SlowStartInterval, so short index lookups finish
//     on a single connection while long analytical tasks fan out;
//   - the shared connection limit, enforced by the per-node pools;
//   - task↔connection affinity: within a transaction, a co-located shard
//     group always reuses the connection that first accessed it, keeping
//     uncommitted writes and locks visible.
func (n *Node) executeTasks(s *engine.Session, tasks []task) ([]*engine.Result, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	st := n.state(s)

	writeTasks := 0
	for i := range tasks {
		if tasks[i].isWrite {
			writeTasks++
			if tasks[i].shardGroup >= 0 {
				n.fenceWait(tasks[i].shardGroup)
			}
		}
	}
	metTasksWrite.Add(int64(writeTasks))
	metTasksRead.Add(int64(len(tasks) - writeTasks))
	// Replica-aware read routing: an autocommit read with placement
	// candidates picks its node now, round-robin across healthy
	// placements. Reads inside an explicit transaction stay on the primary
	// so the session observes its own uncommitted writes.
	inTxn := s.InTransaction()
	for i := range tasks {
		t := &tasks[i]
		if t.isWrite || len(t.readNodes) == 0 {
			continue
		}
		if !inTxn {
			t.nodeID = n.pickReadNode(t.readNodes)
		}
		if t.nodeID == t.readNodes[0] {
			metPrimaryReads.Inc()
		} else {
			metReplicaReads.Inc()
		}
	}
	// Transaction blocks are needed inside an explicit transaction (for
	// locks/visibility across statements) and for multi-shard writes in a
	// single statement (atomicity via 2PC at commit).
	txnMode := inTxn || writeTasks > 1
	if txnMode {
		n.registerTxnCallbacks(s, st)
	}

	// Fast path: a single task outside a multi-connection transaction
	// round-trips on one connection with minimal overhead.
	results := make([]*engine.Result, len(tasks))

	byNode := make(map[int][]int) // node -> task indexes
	for i := range tasks {
		byNode[tasks[i].nodeID] = append(byNode[tasks[i].nodeID], i)
	}

	var wg sync.WaitGroup
	var firstErr atomic.Value
	for nodeID, idxs := range byNode {
		wg.Add(1)
		go func(nodeID int, idxs []int) {
			defer wg.Done()
			if err := n.runNodeTasks(s, st, nodeID, idxs, tasks, results, txnMode); err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}(nodeID, idxs)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}
	// Replication barrier for autocommit writes and shard DDL: the worker
	// committed (or ran the DDL) inside the task round trip, so the
	// durability contract is enforced here, before the client sees the
	// result. Transactional writes instead wait in the distributed commit
	// path (dtxn), after COMMIT/COMMIT PREPARED succeeds.
	if !txnMode && n.SyncWaiter != nil {
		waited := map[int]bool{}
		for i := range tasks {
			t := &tasks[i]
			if !t.isWrite && !t.isDDL || waited[t.nodeID] {
				continue
			}
			waited[t.nodeID] = true
			if err := n.SyncWaiter(t.nodeID); err != nil {
				return nil, fmt.Errorf("replication wait after write on node %d: %w", t.nodeID, err)
			}
		}
	}
	return results, nil
}

// pickReadNode chooses the placement a read task runs on: round-robin
// over the candidates that still look healthy (a placement can go down
// between planning and execution), falling back to the primary when every
// candidate is marked down.
func (n *Node) pickReadNode(candidates []int) int {
	healthy := candidates
	for _, id := range candidates {
		if n.Meta.NodeDown(id) {
			healthy = nil
			for _, c := range candidates {
				if !n.Meta.NodeDown(c) {
					healthy = append(healthy, c)
				}
			}
			break
		}
	}
	if len(healthy) == 0 {
		return candidates[0]
	}
	if len(healthy) == 1 {
		return healthy[0]
	}
	return healthy[int(n.readRR.Add(1))%len(healthy)]
}

// latencyFor returns the cached per-node child of the task-latency
// histogram. Resolving the label once per node keeps the hot path at a
// map load instead of a label-vector lookup per task.
func (n *Node) latencyFor(nodeID int) *obs.Histogram {
	if h, ok := n.nodeLat.Load(nodeID); ok {
		return h.(*obs.Histogram)
	}
	h := metTaskLatencyNode.With(strconv.Itoa(nodeID))
	actual, _ := n.nodeLat.LoadOrStore(nodeID, h)
	return actual.(*obs.Histogram)
}

// runNodeTasks schedules one worker node's tasks across its connections.
func (n *Node) runNodeTasks(s *engine.Session, st *sessState, nodeID int, idxs []int, tasks []task, results []*engine.Result, txnMode bool) error {
	p, err := n.poolFor(nodeID)
	if err != nil {
		return err
	}

	// Split tasks into per-connection assigned queues (transaction
	// affinity) and the general pool for this worker.
	st.mu.Lock()
	assigned := make(map[*workerConn][]int)
	var general []int
	for _, i := range idxs {
		if g := tasks[i].shardGroup; g >= 0 {
			if wc, ok := st.groupConn[g]; ok && wc.nodeID == nodeID {
				assigned[wc] = append(assigned[wc], i)
				continue
			}
		}
		general = append(general, i)
	}
	pinned := append([]*workerConn(nil), st.conns[nodeID]...)
	st.mu.Unlock()

	var remaining atomic.Int64
	remaining.Store(int64(len(general)))
	taskCh := make(chan int, len(general))
	for _, i := range general {
		taskCh <- i
	}
	close(taskCh)

	var mu sync.Mutex
	var runErr error
	var aborted atomic.Bool
	noteErr := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		aborted.Store(true)
	}

	window := 1
	if !n.Cfg.DisablePipelining {
		window = n.Cfg.PipelineWindow
	}
	// fairShare is a connection's pipelined batch size for the general
	// queue. The shared connection limit caps this node's possible fan-out,
	// so when it forces multiple tasks per connection the surplus rides one
	// pipelined window instead of paying a round trip each; when the limit
	// would permit one connection per task, batches stay at 1 and the
	// adaptive fan-out keeps its full cross-connection parallelism. The
	// share is fixed from the initial queue length rather than the live
	// remainder: a shrinking target would hand the first grab a full share
	// and every later grab a sliver (windows of 4,2,1,1 instead of 4,4 for
	// 8 tasks under limit 2), paying round trips for parallelism the limit
	// can't deliver anyway.
	fairShare := 1
	if window > 1 && n.Cfg.MaxSharedPoolSize > 0 {
		fairShare = (len(general) + n.Cfg.MaxSharedPoolSize - 1) / n.Cfg.MaxSharedPoolSize
		if fairShare < 1 {
			fairShare = 1
		}
		if fairShare > window {
			fairShare = window
		}
	}

	runOn := func(wc *workerConn, private []int) {
		// The assigned queue is this connection's alone (transaction
		// affinity pins its shard groups here), so it pipelines in full
		// windows — there is no parallelism to preserve by holding back.
		for start := 0; start < len(private); start += window {
			if aborted.Load() {
				return
			}
			end := start + window
			if end > len(private) {
				end = len(private)
			}
			if err := n.runTaskWindow(s, st, wc, private[start:end], tasks, results, txnMode); err != nil {
				noteErr(err)
				return
			}
		}
		batch := make([]int, 0, window)
		for {
			i, ok := <-taskCh
			if !ok {
				return
			}
			batch = append(batch, i)
			target := fairShare
		fill:
			for len(batch) < target {
				select {
				case j, ok := <-taskCh:
					if !ok {
						break fill
					}
					batch = append(batch, j)
				default:
					break fill
				}
			}
			if aborted.Load() {
				remaining.Add(-int64(len(batch)))
				batch = batch[:0]
				continue
			}
			err := n.runTaskWindow(s, st, wc, batch, tasks, results, txnMode)
			remaining.Add(-int64(len(batch)))
			batch = batch[:0]
			if err != nil {
				noteErr(err)
			}
		}
	}

	var wg sync.WaitGroup
	var newConns []*workerConn
	var newMu sync.Mutex
	startConn := func(wc *workerConn, private []int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runOn(wc, private)
		}()
	}

	// Existing pinned/assigned connections start immediately.
	started := 0
	startedSet := map[*workerConn]bool{}
	for wc, private := range assigned {
		startConn(wc, private)
		startedSet[wc] = true
		started++
	}
	for _, wc := range pinned {
		if !startedSet[wc] {
			startConn(wc, nil)
			startedSet[wc] = true
			started++
		}
	}

	openNew := func() bool {
		wc, err := n.acquireConn(p, nodeID, started == 0)
		if err != nil {
			if errors.Is(err, pool.ErrLimit) {
				return false
			}
			noteErr(err)
			return false
		}
		metConnsOpenedBy.With(strconv.Itoa(nodeID)).Inc()
		newMu.Lock()
		newConns = append(newConns, wc)
		newMu.Unlock()
		startConn(wc, nil)
		started++
		return true
	}

	// Slow start: n=1 connection may be opened now; every interval the
	// allowance grows by one, and we open min(allowance, pending tasks).
	// A negative interval disables the ramp entirely (instant fan-out, the
	// ablation baseline).
	if started == 0 && (len(general) > 0 || txnMode) {
		openNew()
	}
	if n.Cfg.SlowStartInterval < 0 {
		for started < len(general) && !aborted.Load() {
			if !openNew() {
				break
			}
		}
	}
	stopRamp := make(chan struct{})
	var rampWg sync.WaitGroup
	if n.Cfg.SlowStartInterval > 0 && len(general) > 1 {
		rampWg.Add(1)
		go func() {
			defer rampWg.Done()
			allowance := 1
			ticker := time.NewTicker(n.Cfg.SlowStartInterval)
			defer ticker.Stop()
			for {
				select {
				case <-stopRamp:
					return
				case <-ticker.C:
					allowance++
					metSlowStartRounds.Inc()
					pendingTasks := int(remaining.Load())
					want := allowance
					if pendingTasks-started < want {
						want = pendingTasks - started
					}
					for k := 0; k < want; k++ {
						if aborted.Load() || !openNew() {
							break
						}
					}
					if remaining.Load() == 0 {
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stopRamp)
	rampWg.Wait()

	// Connection disposition: transactional connections pin to the
	// session; others return to the shared pool.
	newMu.Lock()
	opened := newConns
	newMu.Unlock()
	st.mu.Lock()
	for _, wc := range opened {
		if wc.gone {
			continue
		} else if wc.inTxn {
			st.conns[nodeID] = append(st.conns[nodeID], wc)
		} else if wc.broken {
			st.mu.Unlock()
			p.Discard(wc.conn)
			st.mu.Lock()
		} else {
			st.mu.Unlock()
			p.Put(wc.conn)
			st.mu.Lock()
		}
	}
	st.mu.Unlock()

	mu.Lock()
	defer mu.Unlock()
	return runErr
}

// acquireConn gets a connection from the pool, waiting under the shared
// limit only when the caller has no connection at all (must ≥ 1 to make
// progress; the wait is how connection slots converge to a fair division
// between concurrent distributed queries, §3.6.1).
func (n *Node) acquireConn(p *pool.NodePool, nodeID int, mustHave bool) (*workerConn, error) {
	for {
		c, err := p.Get()
		if err == nil {
			return &workerConn{conn: c, nodeID: nodeID, pool: p}, nil
		}
		if !errors.Is(err, pool.ErrLimit) || !mustHave {
			return nil, err
		}
		metConnWaits.Inc()
		time.Sleep(200 * time.Microsecond)
	}
}

// beginTxnBlock opens the remote transaction block the first time a
// transactional task lands on a connection. BEGIN and the session SETs
// (dist txn id, plus the isolation level for serializable sessions) ride
// one pipelined batch (one round trip instead of two or three); all are
// checked before any task request is issued, so a failed BEGIN can never
// let a write execute outside the block. With pipelining disabled they
// fall back to plain round trips.
func (n *Node) beginTxnBlock(s *engine.Session, st *sessState, wc *workerConn) error {
	stmts := []string{
		"BEGIN",
		fmt.Sprintf("SET citus.dist_txn_id = '%s'", st.distID),
	}
	// Serializable sessions propagate the isolation level so the worker's
	// local transaction registers for SSI tracking (SIREAD locks and
	// rw-antidependency edges happen where the data lives; see docs/ssi.md).
	if s.Serializable() && n.ssiActive() {
		stmts = append(stmts, "SET transaction_isolation = 'serializable'")
	}
	// The pool is shared across coordinator sessions, so these session-level
	// GUCs must be wiped before the connection is reused (see
	// resetWorkerSession) — a leaked 'serializable' would enroll unrelated
	// queries in SSI tracking, and a stale dist txn id could let a
	// cluster-wide pivot abort doom an innocent transaction.
	wc.dirty = true
	if n.Cfg.DisablePipelining {
		for i, q := range stmts {
			if _, err := wc.conn.Query(q); err != nil {
				wc.broken = true
				if i == 0 {
					return fmt.Errorf("opening transaction block on node %d: %w", wc.nodeID, err)
				}
				return err
			}
		}
		wc.inTxn = true
		return nil
	}
	pl := wc.conn.Pipeline(len(stmts))
	pending := make([]*wire.Pending, len(stmts))
	for i, q := range stmts {
		pending[i] = pl.Query(q)
	}
	_ = pl.Flush()
	for i, pd := range pending {
		if _, err := pd.Result(); err != nil {
			wc.broken = true
			if i == 0 {
				return fmt.Errorf("opening transaction block on node %d: %w", wc.nodeID, err)
			}
			return err
		}
	}
	wc.inTxn = true
	return nil
}

// resetWorkerSession wipes the session-level GUCs beginTxnBlock installed
// (dist txn id, isolation level) before a connection goes back to the
// shared pool — the moral equivalent of a pooler's server_reset_query.
// Without it the next checkout inherits another session's serializable
// isolation (enrolling plain autocommit reads in SSI tracking) and its
// stale dist txn id (misattributing stat rows, and worse: a cluster-wide
// pivot abort matches on dist id). Returns false when the reset itself
// failed, in which case the connection must be discarded, not pooled.
func (n *Node) resetWorkerSession(wc *workerConn) bool {
	stmts := []string{
		"SET citus.dist_txn_id = ''",
		"SET transaction_isolation = 'read committed'",
	}
	if n.Cfg.DisablePipelining {
		for _, q := range stmts {
			if _, err := wc.conn.Query(q); err != nil {
				return false
			}
		}
		wc.dirty = false
		return true
	}
	pl := wc.conn.Pipeline(len(stmts))
	pending := make([]*wire.Pending, len(stmts))
	for i, q := range stmts {
		pending[i] = pl.Query(q)
	}
	_ = pl.Flush()
	for _, pd := range pending {
		if _, err := pd.Result(); err != nil {
			return false
		}
	}
	wc.dirty = false
	return true
}

// runTask executes one task on one connection, opening a remote
// transaction block first when in transactional mode.
func (n *Node) runTask(s *engine.Session, st *sessState, wc *workerConn, t *task, results []*engine.Result, i int, txnMode bool) error {
	if txnMode && !wc.inTxn {
		if err := n.beginTxnBlock(s, st, wc); err != nil {
			return err
		}
	}
	// One child span per task (§3.6.1 meets the trace model): labeled with
	// the shard group, target node, plan-cache disposition, and — after the
	// round trip — the attempt count and row count. The trace context is
	// stamped onto the connection so the worker's engine spans (parse, plan,
	// execute, lock_wait, wal_fsync) nest under this task span.
	sp := n.Eng.Tracer.StartSpan(s.TraceID, s.SpanID, "task", t.sql)
	if sp != nil {
		sp.SetAttr("shard_group", strconv.FormatInt(t.shardGroup, 10))
		sp.SetAttr("node", strconv.Itoa(t.nodeID))
		cache := t.cache
		if cache == "" {
			cache = "miss"
		}
		sp.SetAttr("plancache", cache)
		wc.conn.SetTrace(s.TraceID, sp.SpanID())
	}
	start := time.Now()
	res, attempts, err := n.queryTask(wc, t)
	// Transient transport failures (connection reset, dropped response) on
	// idempotent work retry on a fresh connection with doubling backoff.
	// Only read-only tasks outside a transaction block qualify: a write or
	// an in-transaction task may have taken effect on the worker before
	// the response was lost, so re-running it is not safe.
	if err != nil && !t.isWrite && !txnMode && wc.pool != nil {
		for wire.IsTransient(err) && attempts < maxTaskAttempts {
			time.Sleep(taskRetryBackoff << (attempts - 1))
			if rerr := n.refreshConn(wc); rerr != nil {
				break
			}
			if sp != nil {
				wc.conn.SetTrace(s.TraceID, sp.SpanID())
			}
			metTaskRetries.Inc()
			attempts++
			res, _, err = n.queryTask(wc, t)
		}
	}
	if err != nil && wire.IsTransient(err) {
		// A transport-level failure means the connection's streams can no
		// longer be trusted (the transport may even be closed): mark it
		// broken so every disposition path discards it instead of
		// recycling it into the pool — even if the task itself is rescued
		// by the primary fallback below.
		wc.broken = true
	}
	if err != nil && n.canFallbackToPrimary(t, txnMode, wc) {
		if fres, ferr := n.replicaFallback(t); ferr == nil {
			res, err = fres, nil
		}
	}
	metTaskLatency.ObserveSince(start)
	n.latencyFor(wc.nodeID).ObserveSince(start)
	if sp != nil {
		sp.SetAttr("attempt", strconv.Itoa(attempts))
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			sp.SetAttr("rows", strconv.Itoa(len(res.Rows)))
		}
		sp.Finish()
		wc.conn.ClearTrace()
	}
	if err != nil {
		return fmt.Errorf("task on node %d failed: %w", wc.nodeID, err)
	}
	results[i] = res
	if t.isWrite {
		wc.wrote = true
	}
	if txnMode && t.shardGroup >= 0 {
		st.mu.Lock()
		if _, ok := st.groupConn[t.shardGroup]; !ok {
			st.groupConn[t.shardGroup] = wc
		}
		st.mu.Unlock()
	}
	return nil
}

// runTaskWindow issues a batch of tasks bound for one connection as a
// single pipelined window (§3.6.1 meets libpq pipeline mode): all requests
// are encoded back-to-back and the responses drained in order, so a queue
// of k tasks costs one network round trip instead of k. Single-task
// batches (and the DisablePipelining ablation, which never builds larger
// ones) take the plain runTask path. Error semantics are runTask's:
// semantic errors fail their own task; a transport failure marks the
// connection broken, poisons the rest of the window, and — for read-only
// tasks outside a transaction — re-issues the failed tasks individually on
// a fresh connection, with writes never retried.
func (n *Node) runTaskWindow(s *engine.Session, st *sessState, wc *workerConn, idxs []int, tasks []task, results []*engine.Result, txnMode bool) error {
	if len(idxs) == 1 {
		return n.runTask(s, st, wc, &tasks[idxs[0]], results, idxs[0], txnMode)
	}
	if txnMode && !wc.inTxn {
		if err := n.beginTxnBlock(s, st, wc); err != nil {
			return err
		}
	}
	depth := strconv.Itoa(len(idxs))
	pl := wc.conn.Pipeline(n.Cfg.PipelineWindow)
	type slot struct {
		idx   int
		sp    *trace.ActiveSpan
		prep  *wire.Pending
		pd    *wire.Pending
		name  string
		start time.Time
	}
	slots := make([]slot, 0, len(idxs))
	var issueErr error
	for _, i := range idxs {
		t := &tasks[i]
		// executor.task fires per pipelined request exactly as it does per
		// round trip; a fault here stops issuing the rest of the window
		// (those tasks never reach the wire and report the same error).
		kind := "read"
		if t.isWrite {
			kind = "write"
		}
		if err := fault.CheckKey(fault.PointExecutorTask, kind); err != nil {
			issueErr = err
			break
		}
		sl := slot{idx: i, start: time.Now()}
		sp := n.Eng.Tracer.StartSpan(s.TraceID, s.SpanID, "task", t.sql)
		if sp != nil {
			sp.SetAttr("shard_group", strconv.FormatInt(t.shardGroup, 10))
			sp.SetAttr("node", strconv.Itoa(t.nodeID))
			cache := t.cache
			if cache == "" {
				cache = "miss"
			}
			sp.SetAttr("plancache", cache)
			sp.SetAttr("pipeline_depth", depth)
			// The request header is captured at enqueue time, so each task's
			// worker-side spans nest under its own task span even though the
			// whole window shares the connection.
			wc.conn.SetTrace(s.TraceID, sp.SpanID())
		}
		sl.sp = sp
		if n.Cfg.DisablePlanCache || len(t.params) == 0 {
			sl.pd = pl.Query(t.sql, t.params...)
		} else {
			sl.name = preparedName(t.sql)
			if wc.conn.PreparedSQL(sl.name) != t.sql {
				sl.prep = pl.Prepare(sl.name, t.sql)
			}
			sl.pd = pl.ExecutePrepared(sl.name, t.params...)
		}
		slots = append(slots, sl)
	}
	_ = pl.Flush()
	wc.conn.ClearTrace()

	var firstErr error
	refreshed := false
	for k := range slots {
		sl := &slots[k]
		t := &tasks[sl.idx]
		attempts := 1
		var res *engine.Result
		var err error
		if sl.prep != nil {
			err = sl.prep.Err()
		}
		if err == nil {
			res, err = sl.pd.Result()
			if wire.IsPlanInvalid(err) {
				// The worker rejected before executing (DDL bumped its schema
				// version between Prepare and Execute): re-prepare and retry
				// with plain round trips, exactly as queryTask does.
				attempts++
				if perr := wc.conn.Prepare(sl.name, t.sql); perr != nil {
					err = perr
				} else {
					res, err = wc.conn.ExecutePrepared(sl.name, t.params...)
				}
			}
		}
		if err != nil && wire.IsTransient(err) {
			wc.broken = true
			// Re-issue transient failures on idempotent work, as runTask
			// does — the connection is refreshed once for the whole window,
			// then each failed read-only task retries individually on it.
			if !t.isWrite && !txnMode && wc.pool != nil {
				for wire.IsTransient(err) && attempts < maxTaskAttempts {
					time.Sleep(taskRetryBackoff << (attempts - 1))
					if !refreshed || wc.broken {
						if rerr := n.refreshConn(wc); rerr != nil {
							break
						}
						refreshed = true
					}
					if sl.sp != nil {
						wc.conn.SetTrace(s.TraceID, sl.sp.SpanID())
					}
					metTaskRetries.Inc()
					attempts++
					res, _, err = n.queryTask(wc, t)
					if err != nil && wire.IsTransient(err) {
						wc.broken = true
					}
				}
				wc.conn.ClearTrace()
			}
		}
		if err != nil && n.canFallbackToPrimary(t, txnMode, wc) {
			if fres, ferr := n.replicaFallback(t); ferr == nil {
				res, err = fres, nil
			}
		}
		metTaskLatency.ObserveSince(sl.start)
		n.latencyFor(wc.nodeID).ObserveSince(sl.start)
		if sl.sp != nil {
			sl.sp.SetAttr("attempt", strconv.Itoa(attempts))
			if err != nil {
				sl.sp.SetAttr("error", err.Error())
			} else {
				sl.sp.SetAttr("rows", strconv.Itoa(len(res.Rows)))
			}
			sl.sp.Finish()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("task on node %d failed: %w", wc.nodeID, err)
			}
			continue
		}
		results[sl.idx] = res
		if t.isWrite {
			wc.wrote = true
		}
		if txnMode && t.shardGroup >= 0 {
			st.mu.Lock()
			if _, ok := st.groupConn[t.shardGroup]; !ok {
				st.groupConn[t.shardGroup] = wc
			}
			st.mu.Unlock()
		}
	}
	if firstErr == nil && issueErr != nil {
		firstErr = fmt.Errorf("task on node %d failed: %w", wc.nodeID, issueErr)
	}
	return firstErr
}

// refreshConn swaps a worker connection's transport for a freshly dialed
// one from the originating pool (the old connection is presumed broken).
// The new connection is acquired before the old one is discarded so a
// failed dial leaves wc untouched — the normal broken-connection
// disposition then discards it exactly once. Under a tight shared
// connection limit the broken connection may itself hold the last slot:
// on ErrLimit the old one is discarded first to free its slot and the
// checkout retried with the same bounded wait acquireConn uses (the
// caller holds ≥1 slot's worth of claim and must get a connection to
// make progress).
func (n *Node) refreshConn(wc *workerConn) error {
	c, err := wc.pool.Get()
	if errors.Is(err, pool.ErrLimit) {
		wc.pool.Discard(wc.conn)
		wc.gone = true
		for errors.Is(err, pool.ErrLimit) {
			metConnWaits.Inc()
			time.Sleep(200 * time.Microsecond)
			c, err = wc.pool.Get()
		}
	}
	if err != nil {
		wc.broken = true
		return err
	}
	if !wc.gone {
		wc.pool.Discard(wc.conn)
	}
	wc.conn = c
	wc.gone = false
	wc.broken = false
	return nil
}

// queryTask ships one task to its worker. Parameterized tasks use the
// prepared-statement protocol so each (connection, statement shape) pair
// parses at most once worker-side; subsequent executions ship only the
// statement name and parameters. DDL and other parameterless one-off
// statements use plain Query. A plan-invalid rejection (worker DDL bumped
// its schema version since Prepare) is returned before the worker executes
// anything, so re-preparing and retrying once is safe even for writes.
// The second return value is the number of execution attempts (2 after a
// plan-invalid retry), recorded on the task span.
func (n *Node) queryTask(wc *workerConn, t *task) (*engine.Result, int, error) {
	// executor.task, keyed "read"/"write": fails or delays a task at the
	// moment of issue, before anything reaches the wire.
	kind := "read"
	if t.isWrite {
		kind = "write"
	}
	if err := fault.CheckKey(fault.PointExecutorTask, kind); err != nil {
		return nil, 1, err
	}
	if n.Cfg.DisablePlanCache || len(t.params) == 0 {
		res, err := wc.conn.Query(t.sql, t.params...)
		return res, 1, err
	}
	name := preparedName(t.sql)
	if wc.conn.PreparedSQL(name) != t.sql {
		if err := wc.conn.Prepare(name, t.sql); err != nil {
			return nil, 1, err
		}
	}
	attempts := 1
	res, err := wc.conn.ExecutePrepared(name, t.params...)
	if wire.IsPlanInvalid(err) {
		attempts++
		if perr := wc.conn.Prepare(name, t.sql); perr != nil {
			return nil, attempts, perr
		}
		res, err = wc.conn.ExecutePrepared(name, t.params...)
	}
	return res, attempts, err
}

// canFallbackToPrimary reports whether a failed read may be re-issued on
// its primary placement: the task ran on a replica (standby reads can
// fail transiently — lagging schema, mid-promotion, crashed standby),
// it is idempotent (read-only, outside a transaction block), and a
// primary candidate exists.
func (n *Node) canFallbackToPrimary(t *task, txnMode bool, wc *workerConn) bool {
	return !t.isWrite && !txnMode && len(t.readNodes) > 1 && wc.nodeID != t.readNodes[0]
}

// replicaFallback retries a failed replica read on the primary placement
// over a fresh connection. The replica's connection disposition is
// untouched — the caller already marked it broken if the transport died.
func (n *Node) replicaFallback(t *task) (*engine.Result, error) {
	primary := t.readNodes[0]
	p, err := n.poolFor(primary)
	if err != nil {
		return nil, err
	}
	wc, err := n.acquireConn(p, primary, true)
	if err != nil {
		return nil, err
	}
	res, _, err := n.queryTask(wc, t)
	if err != nil {
		p.Discard(wc.conn)
		return nil, err
	}
	p.Put(wc.conn)
	metReplicaFallbacks.Inc()
	return res, nil
}

// preparedName derives a stable statement name from the task SQL. A hash
// collision is harmless: PreparedSQL compares the full text, so a colliding
// shape just re-Prepares (the server overwrites the name).
func preparedName(sqlText string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sqlText))
	return "cs_" + strconv.FormatUint(h.Sum64(), 16)
}
