// Package citus implements the paper's primary contribution: the
// distributed database layer that turns a fleet of single-node SQL engines
// into one distributed database. It plugs into the engine's hook points the
// way the Citus extension plugs into PostgreSQL (§3.1):
//
//   - the planner hook intercepts statements referencing distributed or
//     reference tables and produces distributed query plans through a
//     four-planner hierarchy (fast path → router → logical pushdown →
//     logical join-order, §3.5);
//   - the adaptive executor runs plan tasks over per-worker connection
//     pools with slow-start and a shared connection limit (§3.6);
//   - transaction callbacks implement two-phase commit with commit records
//     and recovery (§3.7.2), and a background daemon detects distributed
//     deadlocks by merging worker lock graphs (§3.7.3);
//   - the utility hook propagates DDL and fans out COPY (§3.8).
package citus

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/pool"
	"citusgo/internal/wal"
	"citusgo/internal/wire"
)

// Config tunes a Citus node.
type Config struct {
	// ShardCount is the default shard count for new distributed tables
	// (citus.shard_count; Citus defaults to 32).
	ShardCount int
	// MaxSharedPoolSize caps outgoing connections per worker node
	// (citus.max_shared_pool_size). 0 = 64.
	MaxSharedPoolSize int
	// SlowStartInterval is the adaptive executor's ramp-up period between
	// connection-count increases (citus.executor_slow_start_interval,
	// 10ms in the paper).
	SlowStartInterval time.Duration
	// DeadlockInterval is the distributed deadlock detector's polling
	// period (2s in the paper; tests use a few ms). Negative disables.
	DeadlockInterval time.Duration
	// RecoveryInterval is the 2PC prepared-transaction recovery period.
	// Negative disables.
	RecoveryInterval time.Duration
	// RecoveryGrace is how long a prepared transaction must have been
	// sitting on a worker (by the worker's clock) before the recovery
	// daemon will resolve it. It protects transactions whose coordinator
	// is still between prepare and commit-record write from a wrongful
	// rollback based on a stale ListPrepared snapshot. Default 5s;
	// negative disables (tests that hand-craft orphans resolve at once).
	// WAL-adopted orphans report infinite age and are never graced.
	RecoveryGrace time.Duration
	// BroadcastRowThreshold is the size under which the join-order planner
	// prefers broadcasting a relation over repartitioning (rows).
	BroadcastRowThreshold int64
	// DisablePlanCache turns off the coordinator distributed-plan cache and
	// the prepared-statement task execution path (the ablation toggle; off
	// means every execution re-plans and ships full SQL text).
	DisablePlanCache bool
	// PipelineWindow bounds how many requests the executor keeps in flight
	// per worker connection when it pipelines a multi-task queue (the
	// libpq-pipeline-mode window). 0 = 32.
	PipelineWindow int
	// DisablePipelining makes every task request its own round trip
	// (mirroring DisablePlanCache as the ablation toggle for the pipelined
	// wire protocol; see docs/wire.md).
	DisablePipelining bool
	// DisableTopNPushdown stops the coordinator from shipping
	// ORDER BY <group col> LIMIT k down to the workers of a cross-shard
	// grouped aggregate, so every worker returns its full grouped result
	// (the ablation A5 TopN toggle; see docs/columnar.md).
	DisableTopNPushdown bool
	// DisableSSI turns off serializable snapshot isolation cluster-wide
	// (the ablation A7 toggle): `SET transaction_isolation = 'serializable'`
	// is still accepted but degrades to plain snapshot isolation — no SIREAD
	// locks, no rw-antidependency tracking, no merged-graph commit check.
	// See docs/ssi.md.
	DisableSSI bool
}

func (c Config) withDefaults() Config {
	if c.ShardCount <= 0 {
		c.ShardCount = 32
	}
	if c.MaxSharedPoolSize <= 0 {
		c.MaxSharedPoolSize = 64
	}
	if c.PipelineWindow <= 0 {
		c.PipelineWindow = wire.DefaultPipelineWindow
	}
	if c.SlowStartInterval == 0 {
		c.SlowStartInterval = 10 * time.Millisecond
	}
	if c.DeadlockInterval == 0 {
		c.DeadlockInterval = 2 * time.Second
	}
	if c.RecoveryInterval == 0 {
		c.RecoveryInterval = 30 * time.Second
	}
	if c.RecoveryGrace == 0 {
		c.RecoveryGrace = 5 * time.Second
	} else if c.RecoveryGrace < 0 {
		c.RecoveryGrace = 0
	}
	if c.BroadcastRowThreshold <= 0 {
		c.BroadcastRowThreshold = 10000
	}
	return c
}

// Node is one server with the Citus extension loaded: an engine plus the
// distributed layer. Every node in a cluster is a Node; whether it can
// coordinate distributed queries depends on it having the metadata
// (the coordinator always does; workers after metadata sync / MX).
type Node struct {
	ID   int
	Eng  *engine.Engine
	Meta *metadata.Catalog
	Cfg  Config

	mu      sync.Mutex
	dialers map[int]pool.Dialer
	pools   map[int]*pool.NodePool
	peers   map[int]*engine.Engine

	// pg_dist_transaction: commit records for 2PC recovery. commitMu also
	// serializes record writes against restore-point creation (§3.9).
	commitMu      sync.Mutex
	commitRecords map[string]struct{}

	// ssiCommitMu serializes the SSI merged-graph commit check against the
	// worker commits of other serializable distributed transactions from
	// this coordinator: the graph a transaction validates against must not
	// gain edges from a concurrently committing sibling between the check
	// and the point its own commits become visible.
	ssiCommitMu sync.Mutex

	distSeq  atomic.Uint64
	stopOnce sync.Once
	stopCh   chan struct{}

	// stats
	copyStatementsTotal atomic.Int64

	// procedures with a distribution argument (§3.8 stored procedure
	// delegation): name -> spec
	procMu    sync.Mutex
	distProcs map[string]DistProcedure

	// shard-move write fences (rebalancer)
	fenceMu sync.Mutex
	fences  map[int64]chan struct{}

	// planCache caches fast-path router plans keyed by normalized statement
	// text and metadata version (see plancache.go).
	planCache *planCache

	// SyncWaiter, when set by the cluster orchestrator, blocks after an
	// autocommit write/DDL on a node until that node's replication
	// contract is met (sync: all standbys acked; async: lag within bound).
	SyncWaiter func(nodeID int) error

	// inflight counts executeTasks invocations in progress; readRR is the
	// round-robin cursor for replica-read placement choice; nodeLat caches
	// the per-node task-latency histogram children.
	inflight atomic.Int64
	readRR   atomic.Uint64
	nodeLat  sync.Map // int -> *obs.Histogram
}

// DistProcedure marks a stored procedure as delegatable to the worker that
// owns the shard of its distribution argument.
type DistProcedure struct {
	// ArgIndex is the 0-based position of the distribution argument.
	ArgIndex int
	// ColocatedWith is the distributed table whose shards the argument
	// routes against.
	ColocatedWith string
}

// NewNode attaches the Citus layer to an engine.
func NewNode(id int, eng *engine.Engine, meta *metadata.Catalog, cfg Config) *Node {
	n := &Node{
		ID:            id,
		Eng:           eng,
		Meta:          meta,
		Cfg:           cfg.withDefaults(),
		dialers:       make(map[int]pool.Dialer),
		pools:         make(map[int]*pool.NodePool),
		commitRecords: make(map[string]struct{}),
		stopCh:        make(chan struct{}),
		distProcs:     make(map[string]DistProcedure),
		fences:        make(map[int64]chan struct{}),
		planCache:     newPlanCache(),
	}
	eng.PlannerHook = n.plannerHook
	eng.UtilityHook = n.utilityHook
	eng.CopyHook = n.copyHook
	return n
}

// SetDialer installs the connection factory for a peer node (the cluster
// orchestrator wires this; it is the analog of node connection info in
// pg_dist_node). Re-installing a dialer — a restarted worker has a new
// engine behind the same node ID — drops the existing pool so cached
// connections to the dead incarnation aren't handed out again.
func (n *Node) SetDialer(nodeID int, d pool.Dialer) {
	n.mu.Lock()
	n.dialers[nodeID] = d
	old := n.pools[nodeID]
	delete(n.pools, nodeID)
	n.mu.Unlock()
	if old != nil {
		old.CloseAll()
	}
}

// pipelineWindow is the in-flight window for pipelined request batches —
// 1 (i.e. plain round trips) when the pipelining ablation is off.
func (n *Node) pipelineWindow() int {
	if n.Cfg.DisablePipelining {
		return 1
	}
	return n.Cfg.PipelineWindow
}

// poolFor returns the shared connection pool toward a node.
func (n *Node) poolFor(nodeID int) (*pool.NodePool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.pools[nodeID]; ok {
		return p, nil
	}
	d, ok := n.dialers[nodeID]
	if !ok {
		return nil, fmt.Errorf("no connection information for node %d", nodeID)
	}
	p := pool.New(fmt.Sprintf("node-%d", nodeID), n.Cfg.MaxSharedPoolSize, d)
	n.pools[nodeID] = p
	return p, nil
}

// canCoordinate reports whether this node may plan distributed queries: it
// must have the metadata (coordinator, or a worker after metadata sync).
func (n *Node) canCoordinate() bool {
	for _, node := range n.Meta.Nodes() {
		if node.ID == n.ID {
			return node.IsCoordinator || node.HasMetadata
		}
	}
	return false
}

// StartDaemons launches the maintenance daemon: distributed deadlock
// detection and 2PC recovery (the "background worker" of §3.1).
func (n *Node) StartDaemons() {
	if n.Cfg.DeadlockInterval > 0 {
		go n.deadlockLoop()
	}
	if n.Cfg.RecoveryInterval > 0 {
		go n.recoveryLoop()
	}
}

// Close stops daemons and drops pooled connections.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.mu.Lock()
	pools := make([]*pool.NodePool, 0, len(n.pools))
	for _, p := range n.pools {
		pools = append(pools, p)
	}
	n.mu.Unlock()
	for _, p := range pools {
		p.CloseAll()
	}
}

// WaitExecutorIdle blocks until no executeTasks call is in flight on this
// node, or the timeout elapses. The cluster's RestartWorker uses it as a
// quiesce gate: rewiring dialers while an executor retry loop holds a
// connection to the old engine incarnation races the retry's re-dial.
func (n *Node) WaitExecutorIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for n.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
	return true
}

// flushIdleConns closes idle pooled connections toward every node. Called
// when DDL invalidates server-side prepared statements wholesale (DROP
// TABLE): idle connections' sessions hold statements referencing dropped
// shards, and discarding them is cheaper than re-validating on checkout.
// Checked-out and transaction-pinned connections are untouched — their
// stale statements bounce off the worker's schema-version check instead.
func (n *Node) flushIdleConns() {
	n.mu.Lock()
	pools := make([]*pool.NodePool, 0, len(n.pools))
	for _, p := range n.pools {
		pools = append(pools, p)
	}
	n.mu.Unlock()
	for _, p := range pools {
		p.FlushIdle()
	}
}

// RegisterDistributedProcedure enables worker delegation for a stored
// procedure previously registered on every node's engine.
func (n *Node) RegisterDistributedProcedure(name string, spec DistProcedure) {
	n.procMu.Lock()
	defer n.procMu.Unlock()
	n.distProcs[name] = spec
}

func (n *Node) distProcedure(name string) (DistProcedure, bool) {
	n.procMu.Lock()
	defer n.procMu.Unlock()
	p, ok := n.distProcs[name]
	return p, ok
}

// PoolStats reports (total, idle) connections toward a node.
func (n *Node) PoolStats(nodeID int) (total, idle int) {
	n.mu.Lock()
	p, ok := n.pools[nodeID]
	n.mu.Unlock()
	if !ok {
		return 0, 0
	}
	return p.Stats()
}

// AddCommitRecordForTest inserts a commit record directly (tests simulate a
// coordinator that crashed between writing records and resolving 2PC).
func (n *Node) AddCommitRecordForTest(gid string) {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	n.commitRecords[gid] = struct{}{}
	n.Eng.WAL.Append(wal.Record{Type: wal.RecCommitRecord, GID: gid})
}

// RecoverCommitRecords rebuilds the commit-record table from WAL records
// (restore/restart path): the records' WAL durability is what §3.7.2
// relies on ("the commit records are durably stored").
func (n *Node) RecoverCommitRecords(recs []wal.Record, upTo int64) {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	for _, r := range recs {
		if r.Type != wal.RecCommitRecord {
			continue
		}
		if upTo > 0 && r.LSN > upTo {
			continue
		}
		n.commitRecords[r.GID] = struct{}{}
	}
}

// nextDistTxnID mints a distributed transaction identifier. The encoded
// timestamp lets the deadlock detector pick the youngest transaction in a
// cycle as the victim.
func (n *Node) nextDistTxnID() string {
	return fmt.Sprintf("%d:%d:%d", n.ID, time.Now().UnixNano(), n.distSeq.Add(1))
}

// ---------------------------------------------------------------------------
// Session state

// sessState is the distributed layer's per-session state, stored in
// engine.Session.Ext: the connection cache and per-transaction connection
// assignments ("for every connection, Citus tracks which shards have been
// accessed", §3.6.1).
type sessState struct {
	mu sync.Mutex

	// conns are connections pinned to the current transaction, per node.
	conns map[int][]*workerConn
	// groupConn assigns a co-located shard group to the connection that
	// already touched it in this transaction.
	groupConn map[int64]*workerConn

	distID     string
	registered bool // transaction callbacks installed
}

// workerConn wraps a pooled connection with transaction state.
type workerConn struct {
	conn   *wire.Conn
	nodeID int
	pool   *pool.NodePool // originating pool, for mid-task replacement
	inTxn  bool           // BEGIN sent for the current distributed transaction
	wrote  bool           // performed a write in this transaction
	dirty  bool           // session GUCs were SET; reset before the shared pool reuses it
	broken bool           // protocol error: discard instead of returning to pool
	gone   bool           // already discarded mid-task (failed refresh); skip disposition
}

func (n *Node) state(s *engine.Session) *sessState {
	if st, ok := s.Ext.(*sessState); ok {
		return st
	}
	st := &sessState{
		conns:     make(map[int][]*workerConn),
		groupConn: make(map[int64]*workerConn),
	}
	s.Ext = st
	return st
}

// fenceWait blocks while a shard group is fenced for a shard move.
func (n *Node) fenceWait(group int64) {
	for {
		n.fenceMu.Lock()
		ch, fenced := n.fences[group]
		n.fenceMu.Unlock()
		if !fenced {
			return
		}
		<-ch
	}
}

// fence blocks writers of a shard group; the returned release function
// unblocks them (used by the rebalancer during the final catchup, §3.4).
func (n *Node) fence(group int64) func() {
	ch := make(chan struct{})
	n.fenceMu.Lock()
	n.fences[group] = ch
	n.fenceMu.Unlock()
	return func() {
		n.fenceMu.Lock()
		delete(n.fences, group)
		n.fenceMu.Unlock()
		close(ch)
	}
}
