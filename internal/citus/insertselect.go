package citus

import (
	"fmt"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/sql"
	"citusgo/internal/types"
)

// planInsertSelect picks among the three INSERT..SELECT strategies of §3.8:
//
//  1. co-located: source and destination share a co-location group and the
//     SELECT is pushdownable without a merge step — each shard pair runs
//     "INSERT INTO dest_shard SELECT ... FROM src_shard" in parallel;
//  2. repartition: no merge step needed but not co-located — the SELECT
//     result is repartitioned by the destination's distribution column
//     before insertion;
//  3. via coordinator: the SELECT needs a coordinator merge — run it as a
//     distributed SELECT and route the rows back into the destination.
func (n *Node) planInsertSelect(ins *sql.InsertStmt, dt *metadata.DistTable, params []types.Datum) (engine.Plan, error) {
	if n.colocatedInsertSelectOK(ins, dt) {
		return n.planColocatedInsertSelect(ins, dt, params)
	}
	if plan, err := n.planRepartitionInsertSelect(ins, dt, params); plan != nil || err != nil {
		return plan, err
	}
	return n.planInsertSelectViaCoordinator(ins, params)
}

// colocatedInsertSelectOK checks strategy 1's preconditions.
func (n *Node) colocatedInsertSelectOK(ins *sql.InsertStmt, dt *metadata.DistTable) bool {
	if dt.Type != metadata.DistributedTable {
		return false
	}
	sel := ins.Select
	dist, _ := n.citusTablesIn(sel)
	if len(dist) == 0 {
		return false
	}
	for _, src := range dist {
		if !n.Meta.Colocated(src, dt.Name) {
			return false
		}
	}
	if !n.joinsAreColocated(sel) || n.subqueriesPushdownable(sel) != nil {
		return false
	}
	// the SELECT must not need a merge step
	hasAgg := len(sel.GroupBy) > 0
	for _, it := range sel.Columns {
		if it.Star {
			hasAgg = hasAgg || false
			continue
		}
		if containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg && !n.groupByIncludesDistCol(sel) {
		return false
	}
	if sel.Limit != nil || sel.Offset != nil {
		return false
	}
	// the destination's distribution column must be fed by a source
	// distribution column so rows stay within the shard pair
	pos := n.destDistColumnPosition(ins, dt)
	if pos == -1 || pos >= len(sel.Columns) {
		return false
	}
	item := sel.Columns[pos]
	if item.Star {
		return false
	}
	src := item.Expr
	cr, ok := src.(*sql.ColumnRef)
	if !ok {
		return false
	}
	for _, tbl := range dist {
		sdt, _ := n.Meta.Table(tbl)
		if sdt.DistColumn == cr.Name {
			return true
		}
	}
	return false
}

func containsAgg(e sql.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	var walk func(x sql.Expr)
	walk = func(x sql.Expr) {
		if fc, ok := x.(*sql.FuncCall); ok {
			switch fc.Name {
			case "count", "sum", "avg", "min", "max":
				found = true
			}
			for _, a := range fc.Args {
				walk(a)
			}
			return
		}
		switch t := x.(type) {
		case *sql.BinaryExpr:
			walk(t.L)
			walk(t.R)
		case *sql.UnaryExpr:
			walk(t.E)
		case *sql.CastExpr:
			walk(t.E)
		case *sql.CaseExpr:
			if t.Operand != nil {
				walk(t.Operand)
			}
			for _, w := range t.Whens {
				walk(w.When)
				walk(w.Then)
			}
			if t.Else != nil {
				walk(t.Else)
			}
		}
	}
	walk(e)
	return found
}

// destDistColumnPosition finds the destination distribution column's index
// in the INSERT column list.
func (n *Node) destDistColumnPosition(ins *sql.InsertStmt, dt *metadata.DistTable) int {
	cols := ins.Columns
	if len(cols) == 0 {
		cols = n.tableColumnsFromSchema(dt)
	}
	for i, c := range cols {
		if c == dt.DistColumn {
			return i
		}
	}
	return -1
}

// planColocatedInsertSelect builds strategy 1: one task per shard pair,
// fully parallel ("Otherwise, the INSERT..SELECT is performed directly on
// the co-located shards in parallel").
func (n *Node) planColocatedInsertSelect(ins *sql.InsertStmt, dt *metadata.DistTable, params []types.Datum) (engine.Plan, error) {
	shards := n.Meta.Shards(dt.Name)
	var tasks []task
	for _, sh := range shards {
		clone, err := sql.CloneStatement(ins)
		if err != nil {
			return nil, err
		}
		sql.RewriteTables(clone, n.shardNameRewriter(sh.Index))
		nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{
			nodeID:     nodeID,
			shardGroup: metadata.ShardGroupID(dt.ColocationID, sh.Index),
			sql:        clone.String(),
			params:     params,
			isWrite:    true,
		})
	}
	return &distPlan{
		node:  n,
		tasks: tasks,
		isDML: true,
		tag:   "INSERT 0",
		explain: []string{
			"Custom Scan (Citus INSERT ... SELECT)",
			fmt.Sprintf("  INSERT/SELECT method: pushdown (co-located), %d tasks", len(tasks)),
		},
	}, nil
}

// planRepartitionInsertSelect builds strategy 2: the pushdownable SELECT
// runs per source shard, its rows are repartitioned by the destination's
// distribution column into intermediate results on the destination's
// placement nodes, and per-shard INSERT ... SELECT FROM intermediate tasks
// complete the move.
func (n *Node) planRepartitionInsertSelect(ins *sql.InsertStmt, dt *metadata.DistTable, params []types.Datum) (engine.Plan, error) {
	if dt.Type != metadata.DistributedTable {
		return nil, nil
	}
	sel := ins.Select
	dist, _ := n.citusTablesIn(sel)
	if len(dist) == 0 {
		return nil, nil
	}
	if !n.joinsAreColocated(sel) || n.subqueriesPushdownable(sel) != nil {
		return nil, nil
	}
	hasAgg := len(sel.GroupBy) > 0
	for _, it := range sel.Columns {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg && !n.groupByIncludesDistCol(sel) {
		return nil, nil // needs a merge step: via-coordinator strategy
	}
	if sel.Limit != nil || sel.Offset != nil || sel.Distinct {
		return nil, nil
	}
	pos := n.destDistColumnPosition(ins, dt)
	if pos == -1 {
		return nil, nil
	}
	cols := ins.Columns
	if len(cols) == 0 {
		cols = n.tableColumnsFromSchema(dt)
	}
	prefix := fmt.Sprintf("citus_isrepart_%d", n.distSeq.Add(1))

	srcTable := dist[0]
	srcShards := n.Meta.Shards(srcTable)
	plan := &distPlan{
		node:          n,
		isDML:         true,
		tag:           "INSERT 0",
		cleanupPrefix: prefix,
		explain: []string{
			"Custom Scan (Citus INSERT ... SELECT)",
			"  INSERT/SELECT method: repartition",
		},
	}
	for _, node := range n.Meta.ActiveNodes() {
		plan.cleanupNodes = append(plan.cleanupNodes, node.ID)
	}
	plan.prepare = func(s *engine.Session, params []types.Datum) ([]task, error) {
		// phase 1: run the SELECT per source shard and collect rows
		var selTasks []task
		for _, sh := range srcShards {
			clone, err := sql.CloneStatement(sel)
			if err != nil {
				return nil, err
			}
			sql.RewriteTables(clone, n.shardNameRewriter(sh.Index))
			nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
			if err != nil {
				return nil, err
			}
			// the SELECT feeds a durable INSERT: pin it to the primary so an
			// async standby's bounded staleness can't leak into written rows
			selTasks = append(selTasks, task{nodeID: nodeID, shardGroup: -1, sql: clone.String(), params: params})
		}
		results, err := n.executeTasks(s, selTasks)
		if err != nil {
			return nil, err
		}
		var rows []types.Row
		for _, r := range results {
			if r != nil {
				rows = append(rows, r.Rows...)
			}
		}
		// phase 2: repartition rows by the destination distribution column
		// and build the insert tasks
		return n.buildInsertTasks(ins.Table, dt, cols, rows, nil)
	}
	return plan, nil
}

// planInsertSelectViaCoordinator builds strategy 3: distributed SELECT,
// then route the rows into the destination within the same distributed
// transaction.
func (n *Node) planInsertSelectViaCoordinator(ins *sql.InsertStmt, params []types.Datum) (engine.Plan, error) {
	return &insertSelectCoordinatorPlan{node: n, ins: ins}, nil
}

type insertSelectCoordinatorPlan struct {
	node *Node
	ins  *sql.InsertStmt
}

func (p *insertSelectCoordinatorPlan) Columns() []string { return nil }
func (p *insertSelectCoordinatorPlan) ExplainLines() []string {
	return []string{
		"Custom Scan (Citus INSERT ... SELECT)",
		"  INSERT/SELECT method: pull to coordinator",
	}
}

func (p *insertSelectCoordinatorPlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	res, err := s.ExecStmt(p.ins.Select, params)
	if err != nil {
		return nil, err
	}
	cols := p.ins.Columns
	n := p.node
	if dt, ok := n.Meta.Table(p.ins.Table); ok {
		if len(cols) == 0 {
			cols = n.tableColumnsFromSchema(dt)
		}
		if len(res.Rows) > 0 && len(res.Rows[0]) != len(cols) {
			return nil, fmt.Errorf("INSERT has %d target columns but SELECT returns %d", len(cols), len(res.Rows[0]))
		}
		tasks, err := n.buildInsertTasks(p.ins.Table, dt, cols, res.Rows, nil)
		if err != nil {
			return nil, err
		}
		results, err := n.executeTasks(s, tasks)
		if err != nil {
			return nil, err
		}
		out := &engine.Result{}
		for _, r := range results {
			if r != nil {
				out.Affected += r.Affected
			}
		}
		out.Tag = fmt.Sprintf("INSERT 0 %d", out.Affected)
		return out, nil
	}
	// destination is a plain local table
	ncopied, err := s.CopyFrom(p.ins.Table, cols, res.Rows)
	if err != nil {
		return nil, err
	}
	return &engine.Result{Tag: fmt.Sprintf("INSERT 0 %d", ncopied), Affected: ncopied}, nil
}
