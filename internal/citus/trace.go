package citus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"citusgo/internal/engine"
	"citusgo/internal/trace"
	"citusgo/internal/types"
	"citusgo/internal/wire"
)

// Trace reassembly: spans are recorded in per-node ring buffers (the
// coordinator's own engine plus every worker's), and the coordinator pulls
// the remote rings over the wire — the same gather pattern as
// citus_stat_activity — to rebuild one distributed trace.

// CollectTrace gathers every span recorded for a trace across the cluster
// and returns them in start order: the coordinator's root and task spans
// plus each worker's engine spans (parse/plan/execute/lock_wait/wal_fsync),
// all sharing the trace id the wire header propagated.
func (n *Node) CollectTrace(traceID uint64) []trace.Span {
	spans := n.Eng.Tracer.Collect(traceID)
	for _, node := range n.Meta.Nodes() {
		if node.ID == n.ID {
			continue
		}
		n.withNodeConn(node.ID, func(c *wire.Conn) error {
			remote, err := c.TraceSpans(traceID)
			if err == nil {
				spans = append(spans, remote...)
			}
			return err
		})
	}
	trace.SortSpans(spans)
	return spans
}

// tracePlan implements `SELECT citus_trace(<trace_id>)`: one row per span
// of the reassembled distributed trace.
type tracePlan struct {
	node *Node
	arg  func() (types.Datum, error)
}

func (p *tracePlan) Columns() []string {
	return []string{"trace_id", "span_id", "parent_id", "node", "kind", "label", "duration_us", "attrs"}
}
func (p *tracePlan) ExplainLines() []string { return []string{"Citus Trace"} }

func (p *tracePlan) Execute(s *engine.Session, params []types.Datum) (*engine.Result, error) {
	v, err := p.arg()
	if err != nil {
		return nil, err
	}
	id, err := types.CoerceTo(v, types.Int)
	if err != nil || id == nil {
		return nil, fmt.Errorf("citus_trace: trace id must be an integer")
	}
	res := &engine.Result{Columns: p.Columns()}
	for _, sp := range p.node.CollectTrace(uint64(id.(int64))) {
		res.Rows = append(res.Rows, types.Row{
			int64(sp.TraceID), int64(sp.SpanID), int64(sp.ParentID),
			sp.Node, sp.Kind, sp.Label,
			sp.Duration.Microseconds(),
			strings.TrimSpace(trace.FormatAttrs(sp.Attrs)),
		})
	}
	res.Tag = fmt.Sprintf("SELECT %d", len(res.Rows))
	return res, nil
}

// ExplainAnalyzeLines implements engine.ExplainAnalyzer: after the traced
// execution, reassemble the trace and render one timed line per executor
// task, with the worker-side spans indented beneath the task that carried
// them. Tasks sort by shard group then node so the output is stable across
// runs (wall-clock ordering of concurrent tasks is not).
func (p *distPlan) ExplainAnalyzeLines(traceID uint64) []string {
	spans := p.node.CollectTrace(traceID)
	children := make(map[uint64][]trace.Span)
	var tasks []trace.Span
	for _, sp := range spans {
		if sp.Kind == "task" {
			tasks = append(tasks, sp)
		} else if sp.ParentID != 0 {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		}
	}
	if len(tasks) == 0 {
		return nil
	}
	sort.SliceStable(tasks, func(i, j int) bool {
		gi, _ := strconv.ParseInt(tasks[i].Attrs.Get("shard_group"), 10, 64)
		gj, _ := strconv.ParseInt(tasks[j].Attrs.Get("shard_group"), 10, 64)
		if gi != gj {
			return gi < gj
		}
		return tasks[i].Attrs.Get("node") < tasks[j].Attrs.Get("node")
	})
	ms := func(d time.Duration) float64 {
		return float64(d.Nanoseconds()) / 1e6
	}
	var lines []string
	var render func(parent uint64, indent string)
	render = func(parent uint64, indent string) {
		for _, c := range children[parent] {
			lines = append(lines, fmt.Sprintf("%s%s on %s: %.3f ms", indent, c.Kind, c.Node, ms(c.Duration)))
			render(c.SpanID, indent+"  ")
		}
	}
	lines = append(lines, fmt.Sprintf("Distributed Tasks (%d):", len(tasks)))
	for _, t := range tasks {
		lines = append(lines, fmt.Sprintf("  Task (shard group %s, node %s, plancache %s): rows=%s, attempt %s, %.3f ms",
			t.Attrs.Get("shard_group"), t.Attrs.Get("node"), t.Attrs.Get("plancache"),
			t.Attrs.Get("rows"), t.Attrs.Get("attempt"), ms(t.Duration)))
		render(t.SpanID, "    ")
	}
	return lines
}
