package citus

import (
	"fmt"
	"sort"
	"sync"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/types"
	"citusgo/internal/wire"
)

// copyHook intercepts COPY into Citus tables (§3.8: "the coordinator opens
// COPY commands for each of the shards and streams rows to the shards
// asynchronously, which means writes are partially parallelized across
// cores even with a single client").
func (n *Node) copyHook(s *engine.Session, table string, columns []string, rows []types.Row) (bool, int, error) {
	dt, ok := n.Meta.Table(table)
	if !ok {
		return false, 0, nil
	}
	if !n.canCoordinate() {
		return true, 0, fmt.Errorf("node %d cannot COPY into distributed tables without metadata", n.ID)
	}
	if s.InTransaction() {
		return true, 0, fmt.Errorf("COPY into distributed tables inside a transaction block is not supported")
	}
	n.copyStatementsTotal.Add(1)
	count, err := n.distributeRows(table, dt, columns, rows)
	return true, count, err
}

// distributeRows routes rows to their shards and streams them with
// per-shard COPY commands, parallelized across connections.
func (n *Node) distributeRows(table string, dt *metadata.DistTable, columns []string, rows []types.Row) (int, error) {
	cols := columns
	tbl, hasLocal := n.Eng.Catalog.Get(table)
	if len(cols) == 0 {
		if !hasLocal {
			return 0, fmt.Errorf("relation %q does not exist", table)
		}
		cols = tbl.ColumnNames()
	}

	shards := n.Meta.Shards(table)
	byShard := make(map[int][]types.Row)
	if dt.Type == metadata.ReferenceTable {
		byShard[0] = rows
	} else {
		distIdx := -1
		for i, c := range cols {
			if c == dt.DistColumn {
				distIdx = i
				break
			}
		}
		if distIdx == -1 {
			return 0, fmt.Errorf("COPY into %q must include the distribution column %q", table, dt.DistColumn)
		}
		for _, row := range rows {
			if distIdx >= len(row) || row[distIdx] == nil {
				return 0, fmt.Errorf("cannot COPY NULL into distribution column %q", dt.DistColumn)
			}
			sh, err := n.Meta.ShardForValue(table, row[distIdx])
			if err != nil {
				return 0, err
			}
			byShard[sh.Index] = append(byShard[sh.Index], row)
		}
	}

	// one stream per shard placement, parallel across connections
	type shardBatch struct {
		shard  *metadata.Shard
		nodeID int
		rows   []types.Row
	}
	var batches []shardBatch
	idxs := make([]int, 0, len(byShard))
	for idx := range byShard {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		sh := shards[idx]
		for _, nodeID := range n.Meta.Placements(sh.ID) {
			batches = append(batches, shardBatch{shard: sh, nodeID: nodeID, rows: byShard[idx]})
		}
	}

	// paper: async per-shard streams — model with a small worker pool per
	// node so a single COPY client still uses several cores per node
	const copyStreamsPerNode = 4
	byNode := make(map[int][]shardBatch)
	for _, b := range batches {
		byNode[b.nodeID] = append(byNode[b.nodeID], b)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	total := 0
	for nodeID, nodeBatches := range byNode {
		streams := copyStreamsPerNode
		if len(nodeBatches) < streams {
			streams = len(nodeBatches)
		}
		work := make(chan shardBatch, len(nodeBatches))
		for _, b := range nodeBatches {
			work <- b
		}
		close(work)
		for w := 0; w < streams; w++ {
			wg.Add(1)
			go func(nodeID int) {
				defer wg.Done()
				p, err := n.poolFor(nodeID)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				// Each stream flushes its shard batches through one pipelined
				// window: all COPY requests for this connection are encoded
				// back-to-back and the per-shard results drained afterwards,
				// so a stream pays one round trip for its whole queue instead
				// of one per shard. With pipelining disabled the window is 1,
				// which degenerates to the sequential round-trip loop.
				type flight struct {
					pd      *wire.Pending
					shardID int64
				}
				var conn *wire.Conn
				var pl *wire.Pipeline
				var inflight []flight
				broken := false
				resolve := func() {
					if pl == nil {
						return
					}
					_ = pl.Flush()
					mu.Lock()
					for _, f := range inflight {
						cnt, err := f.pd.Affected()
						if err != nil {
							if firstErr == nil {
								firstErr = err
							}
							if wire.IsTransient(err) {
								broken = true
							}
							continue
						}
						// count only the primary placement toward the total
						if n.Meta.Placements(f.shardID)[0] == nodeID {
							total += cnt
						}
					}
					mu.Unlock()
					inflight = inflight[:0]
				}
				for b := range work {
					if conn == nil {
						c, err := n.acquireConn(p, nodeID, true)
						if err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
						conn = c.conn
						pl = conn.Pipeline(n.pipelineWindow())
					}
					inflight = append(inflight, flight{
						pd:      pl.Copy(b.shard.ShardName(), cols, b.rows),
						shardID: b.shard.ID,
					})
					if n.Cfg.DisablePipelining {
						resolve()
					}
				}
				resolve()
				if conn != nil {
					// a transport-level failure leaves the connection desynced:
					// discard it instead of recycling it into the pool
					if broken {
						p.Discard(conn)
					} else {
						p.Put(conn)
					}
				}
			}(nodeID)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return total, nil
}

// buildInsertTasks turns materialized rows into batched INSERT tasks per
// shard (used by the via-coordinator INSERT..SELECT strategy, which must
// stay transactional — unlike COPY, these run in the distributed
// transaction and commit via 2PC).
func (n *Node) buildInsertTasks(table string, dt *metadata.DistTable, cols []string, rows []types.Row, params []types.Datum) ([]task, error) {
	const batch = 500
	byShard := make(map[int][]types.Row)
	if dt.Type == metadata.ReferenceTable {
		byShard[0] = rows
	} else {
		distIdx := -1
		for i, c := range cols {
			if c == dt.DistColumn {
				distIdx = i
				break
			}
		}
		if distIdx == -1 {
			return nil, fmt.Errorf("INSERT into %q must include the distribution column %q", table, dt.DistColumn)
		}
		for _, row := range rows {
			if row[distIdx] == nil {
				return nil, fmt.Errorf("cannot insert NULL into distribution column %q", dt.DistColumn)
			}
			sh, err := n.Meta.ShardForValue(table, row[distIdx])
			if err != nil {
				return nil, err
			}
			byShard[sh.Index] = append(byShard[sh.Index], row)
		}
	}
	shards := n.Meta.Shards(table)
	var tasks []task
	idxs := make([]int, 0, len(byShard))
	for idx := range byShard {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		shardRows := byShard[idx]
		sh := shards[idx]
		placements := n.Meta.Placements(sh.ID)
		for start := 0; start < len(shardRows); start += batch {
			end := start + batch
			if end > len(shardRows) {
				end = len(shardRows)
			}
			ins := &engineInsert{table: sh.ShardName(), cols: cols, rows: shardRows[start:end]}
			for _, nodeID := range placements {
				tasks = append(tasks, task{
					nodeID:     nodeID,
					shardGroup: metadata.ShardGroupID(dt.ColocationID, sh.Index),
					sql:        ins.SQL(),
					params:     params,
					isWrite:    true,
				})
			}
		}
	}
	return tasks, nil
}

// engineInsert deparses a literal-valued INSERT.
type engineInsert struct {
	table string
	cols  []string
	rows  []types.Row
}

func (e *engineInsert) SQL() string {
	var sb []byte
	sb = append(sb, "INSERT INTO "...)
	sb = append(sb, e.table...)
	sb = append(sb, " ("...)
	for i, c := range e.cols {
		if i > 0 {
			sb = append(sb, ", "...)
		}
		sb = append(sb, c...)
	}
	sb = append(sb, ") VALUES "...)
	for i, row := range e.rows {
		if i > 0 {
			sb = append(sb, ", "...)
		}
		sb = append(sb, '(')
		for j, v := range row {
			if j > 0 {
				sb = append(sb, ", "...)
			}
			sb = append(sb, types.QuoteLiteral(v)...)
		}
		sb = append(sb, ')')
	}
	return string(sb)
}
