package citus_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"citusgo/internal/cluster"
	"citusgo/internal/types"
)

// TestSharedConnectionLimitRespected floods the coordinator with parallel
// multi-shard queries and verifies the per-worker connection totals never
// exceed the configured shared limit (§3.6.1).
func TestSharedConnectionLimitRespected(t *testing.T) {
	c, err := cluster.New(cluster.Config{Workers: 2, ShardCount: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Coordinator().Cfg.MaxSharedPoolSize = 4

	s := c.Session()
	mustExec(t, s, "CREATE TABLE busy (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('busy', 'k')")
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO busy (k, v) VALUES (%d, %d)", i, i))
	}

	var wg sync.WaitGroup
	for q := 0; q < 8; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := c.Session()
			for i := 0; i < 10; i++ {
				if _, err := sess.Exec("SELECT count(*) FROM busy"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// the pools' total connection counts stayed at or below the limit
	for nodeID := 2; nodeID <= 3; nodeID++ {
		total, _ := c.Coordinator().PoolStats(nodeID)
		if total > 4 {
			t.Fatalf("node %d has %d connections, limit is 4", nodeID, total)
		}
	}
}

// TestTransactionConnectionAffinity verifies that within a transaction the
// same co-located shard group always uses the same worker connection, so a
// later statement sees the earlier statement's uncommitted writes.
func TestTransactionConnectionAffinity(t *testing.T) {
	c, err := cluster.New(cluster.Config{Workers: 2, ShardCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	mustExec(t, s, "CREATE TABLE aff (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('aff', 'k')")
	mustExec(t, s, "INSERT INTO aff (k, v) VALUES (1, 0)")

	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE aff SET v = 41 WHERE k = 1")
	// read-your-writes: this SELECT must run on the connection that holds
	// the uncommitted update
	expectRows(t, mustExec(t, s, "SELECT v FROM aff WHERE k = 1"), "41")
	mustExec(t, s, "UPDATE aff SET v = v + 1 WHERE k = 1")
	expectRows(t, mustExec(t, s, "SELECT v FROM aff WHERE k = 1"), "42")
	mustExec(t, s, "COMMIT")
	expectRows(t, mustExec(t, s, "SELECT v FROM aff WHERE k = 1"), "42")
}

// TestMultiShardQueryInTransactionSeesOwnWrites covers affinity for
// fan-out reads after routed writes.
func TestMultiShardQueryInTransactionSeesOwnWrites(t *testing.T) {
	c, err := cluster.New(cluster.Config{Workers: 2, ShardCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	mustExec(t, s, "CREATE TABLE msq (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('msq', 'k')")
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO msq (k, v) VALUES (%d, 1)", i))
	}
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE msq SET v = 100 WHERE k = 3")
	mustExec(t, s, "UPDATE msq SET v = 100 WHERE k = 7")
	// the fan-out aggregate must observe both uncommitted updates
	expectRows(t, mustExec(t, s, "SELECT sum(v) FROM msq"), fmt.Sprint(18+200))
	mustExec(t, s, "ROLLBACK")
	expectRows(t, mustExec(t, s, "SELECT sum(v) FROM msq"), "20")
}

func TestErrorCases(t *testing.T) {
	c, err := cluster.New(cluster.Config{Workers: 2, ShardCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	mustExec(t, s, "CREATE TABLE ec (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('ec', 'k')")

	// NULL distribution column
	if _, err := s.Exec("INSERT INTO ec (k, v) VALUES (NULL, 1)"); err == nil {
		t.Fatal("NULL distribution value accepted")
	}
	// missing distribution column
	if _, err := s.Exec("INSERT INTO ec (v) VALUES (1)"); err == nil {
		t.Fatal("insert without distribution column accepted")
	}
	// distributing twice
	if _, err := s.Exec("SELECT create_distributed_table('ec', 'k')"); err == nil {
		t.Fatal("double distribution accepted")
	}
	// distributing a missing table
	if _, err := s.Exec("SELECT create_distributed_table('nope', 'k')"); err == nil {
		t.Fatal("distributing a missing table accepted")
	}
	// colocate_with a non-distributed table
	mustExec(t, s, "CREATE TABLE ec2 (k bigint PRIMARY KEY)")
	if _, err := s.Exec("SELECT create_distributed_table('ec2', 'k', colocate_with := 'nope')"); err == nil {
		t.Fatal("bad colocate_with accepted")
	}
	// colocate_with mismatched types
	mustExec(t, s, "CREATE TABLE ec3 (name text PRIMARY KEY)")
	if _, err := s.Exec("SELECT create_distributed_table('ec3', 'name', colocate_with := 'ec')"); err == nil {
		t.Fatal("type-mismatched colocation accepted")
	}
	// COPY inside a transaction block
	mustExec(t, s, "BEGIN")
	if _, err := s.CopyFrom("ec", []string{"k", "v"}, []types.Row{{int64(1), int64(1)}}); err == nil {
		t.Fatal("COPY in transaction accepted")
	}
	s.Exec("ROLLBACK")
}

func TestExplainShowsPlannerHierarchy(t *testing.T) {
	c, err := cluster.New(cluster.Config{Workers: 2, ShardCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	mustExec(t, s, "CREATE TABLE eh (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('eh', 'k')")

	for query, marker := range map[string]string{
		"SELECT v FROM eh WHERE k = 1":        "Citus Router",
		"SELECT count(*) FROM eh":             "logical pushdown",
		"UPDATE eh SET v = 0 WHERE k = 1":     "Citus Router",
		"UPDATE eh SET v = 0":                 "Multi-Shard",
		"INSERT INTO eh (k, v) VALUES (1, 1)": "Router Insert",
	} {
		res := mustExec(t, s, "EXPLAIN "+query)
		if !strings.Contains(rowsText(res), marker) {
			t.Errorf("EXPLAIN %s missing %q:\n%s", query, marker, rowsText(res))
		}
	}
}

// TestSlowStartOpensConnectionsGradually runs a many-task query with a
// large slow-start interval and verifies execution still completes using
// few connections (the ramp never got a chance to open more).
func TestSlowStartOpensConnectionsGradually(t *testing.T) {
	c, err := cluster.New(cluster.Config{Workers: 1, ShardCount: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Coordinator().Cfg.SlowStartInterval = time.Hour // effectively: never ramp

	s := c.Session()
	mustExec(t, s, "CREATE TABLE ss (k bigint PRIMARY KEY)")
	mustExec(t, s, "SELECT create_distributed_table('ss', 'k')")
	for i := 0; i < 64; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO ss (k) VALUES (%d)", i))
	}
	expectRows(t, mustExec(t, s, "SELECT count(*) FROM ss"), "64")
	total, _ := c.Coordinator().PoolStats(2)
	if total > 2 {
		t.Fatalf("slow start disabled ramping, but %d connections were opened", total)
	}
}
