package citus_test

import (
	"fmt"
	"strings"
	"testing"

	"citusgo/internal/engine"
)

// statCounters queries the citus_stat_counters() UDF and returns the
// metrics as a name -> value map.
func statCounters(t *testing.T, s *engine.Session) map[string]int64 {
	t.Helper()
	res := mustExec(t, s, "SELECT citus_stat_counters()")
	if len(res.Columns) != 2 || res.Columns[0] != "name" || res.Columns[1] != "value" {
		t.Fatalf("citus_stat_counters columns = %v", res.Columns)
	}
	out := make(map[string]int64, len(res.Rows))
	for _, row := range res.Rows {
		out[row[0].(string)] = row[1].(int64)
	}
	return out
}

// familyDelta sums the increase of every metric belonging to a family
// (exact name plus labeled variants) between two counter maps.
func familyDelta(before, after map[string]int64, family string) int64 {
	var d int64
	for k, v := range after {
		if k == family || strings.HasPrefix(k, family+"{") {
			d += v - before[k]
		}
	}
	return d
}

func TestObsMultiShardSelectBumpsCounters(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE obs_items (id int, val text)")
	mustExec(t, s, "SELECT create_distributed_table('obs_items', 'id')")
	for i := 0; i < 8; i++ {
		mustExec(t, s, "INSERT INTO obs_items VALUES ($1, $2)", int64(i), "v")
	}

	before := statCounters(t, s)
	res := mustExec(t, s, "SELECT count(*) FROM obs_items")
	if res.Rows[0][0].(int64) != 8 {
		t.Fatalf("count = %v, want 8", res.Rows[0][0])
	}
	after := statCounters(t, s)

	// The acceptance bar: one multi-shard SELECT observably increments at
	// least three distinct metrics through the SQL interface.
	for _, family := range []string{
		"executor_tasks_total", // one task per shard placed
		"executor_task_latency_ns_count",
		"pool_gets_total",         // worker connections came from the pools
		"engine_statements_total", // coordinator + worker statement counts
	} {
		if d := familyDelta(before, after, family); d <= 0 {
			t.Errorf("%s delta = %d, want > 0", family, d)
		}
	}
	// A multi-shard scan over 8 shards places 8 read tasks.
	if d := familyDelta(before, after, "executor_tasks_total"); d < 8 {
		t.Errorf("executor_tasks_total delta = %d, want >= 8", d)
	}
}

func TestObsTwoPhaseCommitBumpsCounters(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE obs_accounts (id int, balance int)")
	mustExec(t, s, "SELECT create_distributed_table('obs_accounts', 'id')")

	before := statCounters(t, s)
	mustExec(t, s, "BEGIN")
	// Touch every shard so writes certainly land on both workers,
	// forcing the 2PC path (writers > 1) at commit.
	for i := 0; i < 8; i++ {
		mustExec(t, s, "INSERT INTO obs_accounts VALUES ($1, 100)", int64(i))
	}
	mustExec(t, s, "COMMIT")
	after := statCounters(t, s)

	for _, family := range []string{
		"dtxn_2pc_prepares_total",
		"dtxn_2pc_commits_total",
		"dtxn_commit_latency_ns_count",
		`wal_records_total{type="commit_record"}`,
	} {
		if d := familyDelta(before, after, family); d <= 0 {
			t.Errorf("%s delta = %d, want > 0", family, d)
		}
	}
	if d := familyDelta(before, after, "dtxn_2pc_prepares_total"); d < 2 {
		t.Errorf("dtxn_2pc_prepares_total delta = %d, want >= 2 (two workers prepared)", d)
	}
	if d := familyDelta(before, after, "dtxn_2pc_aborts_total"); d != 0 {
		t.Errorf("dtxn_2pc_aborts_total delta = %d, want 0 for a clean commit", d)
	}
}

func TestObsStatActivity(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()

	res := mustExec(t, s, "SELECT citus_stat_activity()")
	want := []string{"node_id", "xid", "dist_txn_id", "state"}
	for i, col := range want {
		if res.Columns[i] != col {
			t.Fatalf("citus_stat_activity columns = %v, want %v", res.Columns, want)
		}
	}
	// The calling statement runs in its own transaction, so at least one
	// active row (this session's) must be present.
	active := 0
	for _, row := range res.Rows {
		if row[3].(string) == "active" {
			active++
		}
	}
	if active < 1 {
		t.Errorf("citus_stat_activity returned %d active rows, want >= 1", active)
	}
}

func TestObsSingleNodeCommitDelegation(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE obs_single (id int, v int)")
	mustExec(t, s, "SELECT create_distributed_table('obs_single', 'id')")

	before := statCounters(t, s)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO obs_single VALUES (1, 1)")
	mustExec(t, s, "COMMIT")
	after := statCounters(t, s)

	if d := familyDelta(before, after, "dtxn_single_node_commits_total"); d != 1 {
		t.Errorf("dtxn_single_node_commits_total delta = %d, want 1 (single-writer delegation, no 2PC)", d)
	}
	if d := familyDelta(before, after, "dtxn_2pc_prepares_total"); d != 0 {
		t.Errorf("dtxn_2pc_prepares_total delta = %d, want 0", d)
	}
}

func TestObsPlanCacheCounters(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE obs_pc (id bigint PRIMARY KEY, val bigint)")
	mustExec(t, s, "SELECT create_distributed_table('obs_pc', 'id')")
	for i := 0; i < 8; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO obs_pc (id, val) VALUES (%d, %d)", i, i))
	}

	before := statCounters(t, s)
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			mustExec(t, s, "SELECT val FROM obs_pc WHERE id = $1", int64(i))
		}
	}
	after := statCounters(t, s)

	// all three caching layers must be exercised by the repeated workload:
	// the coordinator plan cache, the wire prepared-statement path, and the
	// worker session statement cache
	if d := familyDelta(before, after, "citus_plancache_hits"); d <= 0 {
		t.Errorf("citus_plancache_hits delta = %d, want > 0", d)
	}
	if d := familyDelta(before, after, "wire_prepared_executes"); d <= 0 {
		t.Errorf("wire_prepared_executes delta = %d, want > 0", d)
	}
	if d := familyDelta(before, after, "engine_plancache_hits"); d <= 0 {
		t.Errorf("engine_plancache_hits delta = %d, want > 0", d)
	}

	// citus_plancache_stats() exposes the same cache as a relation
	res := mustExec(t, s, "SELECT citus_plancache_stats()")
	if len(res.Columns) != 2 || res.Columns[0] != "name" || res.Columns[1] != "value" {
		t.Fatalf("citus_plancache_stats columns = %v", res.Columns)
	}
	stats := make(map[string]int64, len(res.Rows))
	entryRows := 0
	for _, row := range res.Rows {
		stats[row[0].(string)] = row[1].(int64)
		if strings.HasPrefix(row[0].(string), "shard_groups[") {
			entryRows++
		}
	}
	if stats["entries"] <= 0 || stats["hits"] <= 0 {
		t.Errorf("citus_plancache_stats entries=%d hits=%d, want both > 0", stats["entries"], stats["hits"])
	}
	if entryRows == 0 {
		t.Error("citus_plancache_stats returned no shard_groups[...] per-entry rows")
	}
	if int64(entryRows) != stats["entries"] {
		t.Errorf("per-entry rows = %d, entries = %d; want equal", entryRows, stats["entries"])
	}
}
