package citus

// Distributed SSI (docs/ssi.md): every node tracks SIREAD locks and
// rw-antidependency edges for its local transactions, and the engine's
// pre-commit check aborts dangerous structures it can see locally. A
// conflict chain that spans nodes — T1 reads on worker A what T2 writes,
// T2 reads on worker B what T3 writes — is invisible to any single node,
// so the coordinator merges the per-node conflict graphs (keyed by
// distributed transaction id) at two points: synchronously before a
// multi-node serializable commit, and asynchronously in the deadlock
// detector's poll, which dooms in-flight pivots cluster-wide.

import (
	"fmt"
	"strconv"

	"citusgo/internal/fault"
	"citusgo/internal/obs"
	"citusgo/internal/ssi"
	"citusgo/internal/wire"
)

var (
	metSSIDistChecks = obs.Default().Counter("ssi_dist_checks_total",
		"merged conflict-graph checks run at distributed serializable commit").With()
	metSSIDistAborts = obs.Default().Counter("ssi_dist_aborts_total",
		"distributed transactions aborted as pivots by the merged-graph check").With()
	metSSIPivotDooms = obs.Default().Counter("ssi_pivot_dooms_total",
		"in-flight distributed transactions doomed cluster-wide by the background pivot scan").With()
)

// ssiActive reports whether serializable commits through this node run the
// SSI machinery (the DisableSSI config and the engine gate agree by
// construction — cluster boot wires both — but check both defensively).
func (n *Node) ssiActive() bool {
	return !n.Cfg.DisableSSI && n.Eng.SSIEnabled()
}

// ssiPollFailure converts a failed edge poll into a retryable serialization
// error. The check fails closed: a graph with missing edges could validate a
// pivot that must abort, so an unreachable participant aborts the commit
// rather than risking an anomaly.
func ssiPollFailure(nodeID int, err error) error {
	return fmt.Errorf("ssi edge poll on node %d: %v: %w", nodeID, err, ssi.ErrSerializationFailure)
}

// ssiMergedCheck is the coordinator half of the distributed
// dangerous-structure check, run before a multi-node serializable commit.
// It polls every participant node's rw-antidependency edges, merges them
// with the local ones, and rejects the commit if the committing transaction
// is a pivot in the merged graph. The returned release function must be
// held across the worker commits (the caller defers it): ssiCommitMu
// serializes sibling serializable commits from this coordinator so the
// graph cannot gain edges from a sibling between its check and the moment
// its commits land.
//
// Single-node serializable transactions never come here: all their edges
// live on one engine, whose own pre-commit check is sound, so skipping the
// merged check keeps the common router path at local-SSI cost.
func (n *Node) ssiMergedCheck(distID string, participants []*workerConn, traceID, spanID uint64) (func(), error) {
	n.ssiCommitMu.Lock()
	release := n.ssiCommitMu.Unlock
	sp := n.Eng.Tracer.StartSpan(traceID, spanID, "ssi_check", distID)
	defer sp.Finish()
	metSSIDistChecks.Inc()

	edges := n.Eng.SSIWireEdges()
	polledNodes := 0
	seen := make(map[int]bool, len(participants))
	for _, wc := range participants {
		if seen[wc.nodeID] {
			continue
		}
		seen[wc.nodeID] = true
		// ssi.edge_poll, keyed by worker node ID: chaos schedules fail a
		// poll here to prove the check fails closed.
		if err := fault.CheckKey(fault.PointSSIEdgePoll, strconv.Itoa(wc.nodeID)); err != nil {
			return release, ssiPollFailure(wc.nodeID, err)
		}
		var nodeEdges []ssi.WireEdge
		polled := false
		n.withNodeConn(wc.nodeID, func(c *wire.Conn) error {
			es, err := c.SSIEdges()
			if err != nil {
				return err
			}
			nodeEdges, polled = es, true
			return nil
		})
		if !polled {
			return release, ssiPollFailure(wc.nodeID, fmt.Errorf("connection failed"))
		}
		polledNodes++
		edges = append(edges, nodeEdges...)
	}
	if sp != nil {
		sp.SetAttr("ssi.nodes", strconv.Itoa(polledNodes))
		sp.SetAttr("ssi.edges", strconv.Itoa(len(edges)))
	}
	if ssi.BuildGraph(edges).DangerousPivot(distID) {
		metSSIDistAborts.Inc()
		if sp != nil {
			sp.SetAttr("ssi.verdict", "pivot_abort")
		}
		return release, fmt.Errorf(
			"could not serialize access: distributed transaction %s is an unsafe pivot: %w",
			distID, ssi.ErrSerializationFailure)
	}
	if sp != nil {
		sp.SetAttr("ssi.verdict", "ok")
	}
	return release, nil
}

// doomActivePivots is the asynchronous half: given the cluster-wide edge
// set collected by the deadlock detector's poll, doom every in-flight
// distributed transaction that already forms a dangerous structure. Dooming
// does not interrupt the transaction — its commit fails with a retryable
// serialization error on whichever node it reaches first. This catches
// pivots whose coordinator-side check cannot run (single-writer delegated
// commits racing a sibling from another coordinator in MX mode) earlier
// than their own commit would.
func (n *Node) doomActivePivots(edges []ssi.WireEdge) {
	if len(edges) == 0 || !n.ssiActive() {
		return
	}
	for _, dist := range ssi.BuildGraph(edges).ActivePivots() {
		metSSIPivotDooms.Inc()
		n.Eng.DoomByDistID(dist)
		for _, node := range n.Meta.ActiveNodes() {
			if node.ID == n.ID {
				continue
			}
			dist := dist
			n.withNodeConn(node.ID, func(c *wire.Conn) error {
				_, err := c.DoomDistTxn(dist)
				return err
			})
		}
	}
}
