package citus

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/expr"
	"citusgo/internal/obs"
	"citusgo/internal/sql"
	"citusgo/internal/types"
)

// The coordinator distributed-plan cache: fast-path/router statements are
// normalized by lifting constant literals into synthetic parameters, keyed
// by (normalized SQL, metadata version), and on a hit only shard pruning
// re-runs on the extracted distribution-column value — the parse-tree
// clone, the planner-tier walk, and the per-execution deparse are all
// skipped. Cached entries memoize the deparsed task SQL per shard group,
// so clone.String() runs once per (statement shape × shard group) instead
// of once per execution. This is the plan caching that makes Citus'
// fast-path planner cheap on repeated single-shard OLTP statements.

var (
	metPlanCacheHits = obs.Default().Counter("citus_plancache_hits",
		"router statements planned from the coordinator plan cache").With()
	metPlanCacheMisses = obs.Default().Counter("citus_plancache_misses",
		"router statements analyzed and installed into the coordinator plan cache").With()
	metPlanCacheInvalidations = obs.Default().Counter("citus_plancache_invalidations",
		"coordinator plan-cache entries dropped after a metadata version change").With()
)

// planCacheMaxEntries bounds both the entry map and the negative cache; on
// overflow the map is flushed wholesale (repeated shapes re-enter on the
// next execution, one-off shapes churn through without LRU bookkeeping).
const planCacheMaxEntries = 512

// planCache is per-node and shared by all sessions planning on it.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	// negative remembers shapes the fast path cannot route (multi-table
	// joins, missing distribution filter, ...) so the analysis cost is
	// paid once per (shape, metadata version) instead of per execution.
	negative map[string]int64
	// fp memoizes normalizeStatement by AST identity: the engine session
	// statement cache hands the planner the same parse tree for repeated
	// statement text, so the per-execution key render (a full deparse)
	// collapses to a map lookup. Keying on the pointer keeps the AST alive,
	// so entries can never alias a recycled address; literal values are
	// embedded in the tree, so identity fixes both key and lifted values.
	fp map[sql.Statement]fingerprint

	hits, misses, invalidations atomic.Int64
}

// fingerprint is one memoized normalization result.
type fingerprint struct {
	ok      bool // false: shape is not fast-path eligible
	key     string
	lifted  []types.Datum
	nParams int // caller parameter count the synthetic numbering assumed
}

func newPlanCache() *planCache {
	return &planCache{
		entries:  make(map[string]*planEntry),
		negative: make(map[string]int64),
		fp:       make(map[sql.Statement]fingerprint),
	}
}

// planEntry is one cached statement shape. All fields are immutable after
// install except taskSQL, which memoizes per-shard-group deparses under mu.
type planEntry struct {
	key         string
	metaVersion int64
	norm        sql.Statement // parse of key; read-only, cloned for deparse

	table      string // the distributed table the statement routes on
	colocation int
	// distValue evaluates the distribution-column filter against the
	// combined (caller + lifted) parameters — it handles `k = $1`,
	// `k = 42` (lifted to a synthetic parameter), and `k = $1 + 1` alike.
	distValue expr.Evaluator
	isWrite   bool
	isDML     bool
	tag       string

	mu      sync.Mutex
	taskSQL map[int]string // shard index -> deparsed task SQL
}

// tryPlan is the fast path: normalize, look up, and build a router plan
// without walking the planner tiers. handled=false defers to the regular
// planner walk (ineligible shape, NULL distribution value, cache miss that
// failed analysis).
func (pc *planCache) tryPlan(n *Node, stmt sql.Statement, params []types.Datum) (plan engine.Plan, handled bool, err error) {
	pc.mu.Lock()
	f, have := pc.fp[stmt]
	pc.mu.Unlock()
	if !have || f.nParams != len(params) {
		key, lifted, ok := normalizeStatement(stmt, len(params))
		f = fingerprint{ok: ok, key: key, lifted: lifted, nParams: len(params)}
		pc.mu.Lock()
		if len(pc.fp) >= planCacheMaxEntries {
			pc.fp = make(map[sql.Statement]fingerprint)
		}
		pc.fp[stmt] = f
		pc.mu.Unlock()
	}
	if !f.ok {
		return nil, false, nil
	}
	key, lifted := f.key, f.lifted
	combined := params
	if len(lifted) > 0 {
		// copy, never append in place: the caller owns params
		combined = make([]types.Datum, 0, len(params)+len(lifted))
		combined = append(combined, params...)
		combined = append(combined, lifted...)
	}
	ver := n.Meta.Version()

	pc.mu.Lock()
	if v, bad := pc.negative[key]; bad && v == ver {
		pc.mu.Unlock()
		return nil, false, nil
	}
	e := pc.entries[key]
	if e != nil && e.metaVersion != ver {
		delete(pc.entries, key)
		e = nil
		pc.invalidations.Add(1)
		metPlanCacheInvalidations.Inc()
	}
	pc.mu.Unlock()

	installed := false
	if e == nil {
		if e = pc.install(n, key, ver); e == nil {
			return nil, false, nil
		}
		installed = true
	}
	p, err := e.plan(n, combined, !installed)
	if err != nil {
		return nil, false, err
	}
	if p == nil {
		// NULL distribution value or unroutable parameters: let the
		// planner walk produce the same answer the uncached path would
		return nil, false, nil
	}
	if installed {
		pc.misses.Add(1)
		metPlanCacheMisses.Inc()
	} else {
		pc.hits.Add(1)
		metPlanCacheHits.Inc()
	}
	return p, true, nil
}

// install analyzes a normalized statement shape and caches the result —
// positive or negative — under the metadata version it was analyzed at.
func (pc *planCache) install(n *Node, key string, ver int64) *planEntry {
	e := analyzeRouterShape(n, key, ver)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e == nil {
		if len(pc.negative) >= planCacheMaxEntries {
			pc.negative = make(map[string]int64)
		}
		pc.negative[key] = ver
		return nil
	}
	if prev, ok := pc.entries[key]; ok && prev.metaVersion == ver {
		// a concurrent session installed the same shape; share its entry
		// (and its memoized deparses)
		return prev
	}
	if len(pc.entries) >= planCacheMaxEntries {
		pc.entries = make(map[string]*planEntry)
	}
	pc.entries[key] = e
	return e
}

// analyzeRouterShape decides whether the normalized statement is fast-path
// routable — exactly one distributed table, with a `distcol = <expr>`
// conjunct in the top-level WHERE — and compiles the filter's value
// expression. Reference tables may ride along (they need no filter, as in
// planRouter). Returns nil for shapes the regular planner walk must handle.
func analyzeRouterShape(n *Node, key string, ver int64) *planEntry {
	norm, err := sql.Parse(key)
	if err != nil {
		return nil
	}
	dist, _ := n.citusTablesIn(norm)
	if len(dist) != 1 {
		return nil
	}
	var (
		table, alias string
		where        sql.Expr
		isWrite      bool
		isDML        bool
		tag          string
	)
	switch st := norm.(type) {
	case *sql.SelectStmt:
		if len(st.From) != 1 {
			return nil
		}
		bt, ok := st.From[0].(*sql.BaseTable)
		if !ok {
			return nil
		}
		table, alias, where = bt.Name, bt.RefName(), st.Where
		isWrite = st.ForUpdate
	case *sql.UpdateStmt:
		table, alias, where = st.Table, st.Alias, st.Where
		isWrite, isDML, tag = true, true, "UPDATE"
	case *sql.DeleteStmt:
		table, alias, where = st.Table, st.Alias, st.Where
		isWrite, isDML, tag = true, true, "DELETE"
	default:
		return nil
	}
	if table != dist[0] {
		return nil
	}
	dt, ok := n.Meta.Table(table)
	if !ok || dt.Type != metadata.DistributedTable {
		return nil
	}
	var distValue expr.Evaluator
	for _, c := range splitAnd(where) {
		b, ok := c.(*sql.BinaryExpr)
		if !ok || b.Op != sql.OpEq {
			continue
		}
		cr, crOK := b.L.(*sql.ColumnRef)
		other := b.R
		if !crOK {
			cr, crOK = b.R.(*sql.ColumnRef)
			other = b.L
		}
		if !crOK || cr.Name != dt.DistColumn {
			continue
		}
		if cr.Table != "" && cr.Table != table && cr.Table != alias {
			continue
		}
		if _, isCol := other.(*sql.ColumnRef); isCol {
			// col = col is a join predicate, not a constant filter
			continue
		}
		ev, err := expr.Compile(other, nil)
		if err != nil {
			continue
		}
		distValue = ev
		break
	}
	if distValue == nil {
		return nil
	}
	return &planEntry{
		key:         key,
		metaVersion: ver,
		norm:        norm,
		table:       table,
		colocation:  dt.ColocationID,
		distValue:   distValue,
		isWrite:     isWrite,
		isDML:       isDML,
		tag:         tag,
		taskSQL:     make(map[int]string),
	}
}

// plan re-runs only shard pruning: evaluate the distribution value, hash
// it to a shard, look up the current primary placement (placement moves
// are picked up without eviction — shard names are stable across moves),
// and fetch or build the memoized per-shard task SQL. cached marks the task
// as a plan-cache hit for tracing and EXPLAIN ANALYZE (the first execution
// of a shape installs the entry and still counts as a miss).
func (e *planEntry) plan(n *Node, params []types.Datum, cached bool) (engine.Plan, error) {
	val, err := e.distValue(&expr.Ctx{Params: params})
	if err != nil || val == nil {
		return nil, nil
	}
	sh, err := n.Meta.ShardForValue(e.table, val)
	if err != nil {
		return nil, err
	}
	nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
	if err != nil {
		return nil, err
	}
	sqlText, err := e.sqlFor(n, sh.Index)
	if err != nil {
		return nil, err
	}
	group := metadata.ShardGroupID(e.colocation, sh.Index)
	cacheMark := ""
	if cached {
		cacheMark = "hit"
	}
	var readNodes []int
	if !e.isWrite {
		readNodes = n.Meta.ReadPlacements(sh.ID)
	}
	return &distPlan{
		node: n,
		tasks: []task{{
			nodeID: nodeID, shardGroup: group,
			sql: sqlText, params: params, isWrite: e.isWrite,
			cache: cacheMark, readNodes: readNodes,
		}},
		isDML: e.isDML,
		tag:   e.tag,
		explain: []string{
			"Custom Scan (Citus Router)",
			fmt.Sprintf("  Task Count: 1 (cached plan, shard group %d on node %d)", sh.Index, nodeID),
		},
	}, nil
}

// sqlFor returns the deparsed task SQL for one shard index, building it at
// most once per (entry, shard group).
func (e *planEntry) sqlFor(n *Node, shardIndex int) (string, error) {
	e.mu.Lock()
	if s, ok := e.taskSQL[shardIndex]; ok {
		e.mu.Unlock()
		return s, nil
	}
	e.mu.Unlock()
	clone, err := sql.CloneStatement(e.norm)
	if err != nil {
		return "", err
	}
	sql.RewriteTables(clone, n.shardNameRewriter(shardIndex))
	s := clone.String()
	e.mu.Lock()
	e.taskSQL[shardIndex] = s
	e.mu.Unlock()
	return s, nil
}

// ---------------------------------------------------------------------------
// Statement normalization

// normalizeStatement computes the cache fingerprint of a fast-path-eligible
// statement by temporarily lifting eligible constant literals into
// synthetic parameters (numbered after the caller's), rendering the
// statement text, and restoring the literals in reverse order. Sessions
// execute statements one at a time, so the in-place mutation is invisible
// outside this call. The synthetic-parameter numbering makes the literal
// and parameterized spellings of a statement share one cache entry:
// `WHERE k = 42` with no parameters and `WHERE k = $1` with one both
// normalize to `WHERE k = $1`, with aligned combined parameter spaces.
//
// Only literals whose value cannot change the plan shape are lifted: the
// non-column side of top-level WHERE comparisons against a column, and
// UPDATE SET values (including one arithmetic level, covering the pgbench
// `SET v = v + 1` shape). Literals in LIMIT/OFFSET, ORDER BY, GROUP BY,
// IN lists, and subqueries stay in the fingerprint — distinct constants
// there are distinct plans.
func normalizeStatement(stmt sql.Statement, nParams int) (key string, lifted []types.Datum, ok bool) {
	var restore []func()
	next := nParams
	lift := func(slot *sql.Expr) {
		lit, isLit := (*slot).(*sql.Literal)
		if !isLit || lit.Value == nil {
			return // keep NULL in the text: `= NULL` never matches anyway
		}
		next++
		s, l := slot, lit
		*s = &sql.Param{Index: next}
		lifted = append(lifted, l.Value)
		restore = append(restore, func() { *s = l })
	}
	liftCmp := func(e sql.Expr) {
		b, isBin := e.(*sql.BinaryExpr)
		if !isBin {
			return
		}
		switch b.Op {
		case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		default:
			return
		}
		if _, isCol := b.L.(*sql.ColumnRef); isCol {
			lift(&b.R)
			return
		}
		if _, isCol := b.R.(*sql.ColumnRef); isCol {
			lift(&b.L)
		}
	}
	liftWhere := func(w sql.Expr) {
		for _, c := range splitAnd(w) {
			liftCmp(c)
		}
	}
	liftValue := func(slot *sql.Expr) {
		if b, isBin := (*slot).(*sql.BinaryExpr); isBin {
			switch b.Op {
			case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod, sql.OpConcat:
				if _, isCol := b.L.(*sql.ColumnRef); isCol {
					lift(&b.R)
					return
				}
				if _, isCol := b.R.(*sql.ColumnRef); isCol {
					lift(&b.L)
				}
			}
			return
		}
		lift(slot)
	}

	switch st := stmt.(type) {
	case *sql.SelectStmt:
		if len(st.From) != 1 {
			return "", nil, false
		}
		if _, isBase := st.From[0].(*sql.BaseTable); !isBase {
			return "", nil, false
		}
		liftWhere(st.Where)
	case *sql.UpdateStmt:
		for i := range st.Set {
			liftValue(&st.Set[i].Value)
		}
		liftWhere(st.Where)
	case *sql.DeleteStmt:
		liftWhere(st.Where)
	default:
		return "", nil, false
	}
	key = stmt.String()
	for i := len(restore) - 1; i >= 0; i-- {
		restore[i]()
	}
	return key, lifted, true
}

// ---------------------------------------------------------------------------
// Introspection (citus_plancache_stats)

type planCacheEntryStat struct {
	key         string
	shardGroups int
}

func (pc *planCache) stats() (entries []planCacheEntryStat, hits, misses, invalidations int64) {
	pc.mu.Lock()
	for _, e := range pc.entries {
		e.mu.Lock()
		entries = append(entries, planCacheEntryStat{key: e.key, shardGroups: len(e.taskSQL)})
		e.mu.Unlock()
	}
	pc.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	return entries, pc.hits.Load(), pc.misses.Load(), pc.invalidations.Load()
}
