package citus

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"citusgo/internal/engine"
	"citusgo/internal/fault"
	"citusgo/internal/obs"
	"citusgo/internal/ssi"
	"citusgo/internal/types"
	"citusgo/internal/wal"
	"citusgo/internal/wire"
)

// Distributed transaction and deadlock detector metrics (§3.7).
var (
	metSingleNodeCommits = obs.Default().Counter("dtxn_single_node_commits_total",
		"distributed transactions committed via single-node delegation (no 2PC, §3.7.1)").With()
	met2pcPrepares = obs.Default().Counter("dtxn_2pc_prepares_total",
		"PREPARE TRANSACTION calls issued to workers (§3.7.2)").With()
	met2pcCommits = obs.Default().Counter("dtxn_2pc_commits_total",
		"two-phase commits that reached the committed decision").With()
	met2pcAborts = obs.Default().Counter("dtxn_2pc_aborts_total",
		"two-phase commits that aborted (prepare failure or local rollback)").With()
	metRecoveryResolved = obs.Default().Counter("dtxn_recovery_resolved_total",
		"prepared transactions resolved by the 2PC recovery daemon").With()
	metCommitLatency = obs.Default().Histogram("dtxn_commit_latency_ns",
		"2PC commit protocol latency (prepare through resolution) in nanoseconds", nil).With()

	metDeadlockPolls = obs.Default().Counter("deadlock_polls_total",
		"distributed deadlock detector graph polls (§3.7.3)").With()
	metDeadlockCycles = obs.Default().Counter("deadlock_cycles_total",
		"cycles found in the merged distributed waits-for graph").With()
	metDeadlockVictims = obs.Default().Counter("deadlock_victims_total",
		"distributed transactions cancelled as deadlock victims").With()
)

// registerTxnCallbacks hooks the distributed commit protocol into the
// session's local transaction (the paper's transaction callbacks, §3.1 and
// §3.7): pre-commit runs PREPARE TRANSACTION on every involved worker and
// writes commit records; the end callback resolves the prepared
// transactions on a best-effort basis, with the recovery daemon as backstop.
func (n *Node) registerTxnCallbacks(s *engine.Session, st *sessState) {
	st.mu.Lock()
	if st.registered {
		st.mu.Unlock()
		return
	}
	st.registered = true
	st.distID = n.nextDistTxnID()
	st.mu.Unlock()

	t := s.Txn()
	if t == nil {
		// runPlan/WithTxn always ensure a transaction before execution
		panic("citus: registerTxnCallbacks without a transaction")
	}
	t.DistID = st.distID
	localXID := t.XID
	// The trace context of the statement that opened the distributed
	// transaction. 2PC spans attach here so the commit protocol shows up in
	// the same trace as the work it makes atomic (the callbacks may fire
	// after that statement's root span has closed — the spans still land in
	// the ring and reassemble via citus_trace, they just miss the slow log).
	traceID, traceSpanID := s.TraceID, s.SpanID

	type preparedConn struct {
		wc  *workerConn
		gid string
	}
	var prepared []preparedConn
	committedRecords := false
	var commitStart time.Time

	t.OnPreCommit(func() error {
		participants := st.txnConns()
		if len(participants) == 0 {
			return nil
		}
		writers := 0
		nodes := make(map[int]bool)
		for _, wc := range participants {
			if wc.wrote {
				writers++
			}
			nodes[wc.nodeID] = true
		}
		// Distributed SSI: a serializable transaction spanning several nodes
		// validates against the merged conflict graph before any participant
		// commits; the commit mutex is held until the worker commits (or
		// prepares, which fix the SSI commit order) have landed, so sibling
		// serializable commits serialize against this check. A dangerous
		// pivot aborts here with a retryable serialization error — the
		// cluster-wide write-skew abort.
		if len(nodes) > 1 && s.Serializable() && n.ssiActive() {
			release, err := n.ssiMergedCheck(st.distID, participants, traceID, traceSpanID)
			defer release()
			if err != nil {
				return err
			}
		}
		// Single-node delegation (§3.7.1): with at most one writer there
		// is nothing to make atomic across nodes — plain COMMIT suffices
		// and the worker provides full ACID locally.
		if writers <= 1 {
			var firstErr error
			for _, wc := range participants {
				if _, err := wc.conn.Query("COMMIT"); err != nil {
					wc.broken = true
					if wc.wrote && firstErr == nil {
						firstErr = err
					}
					continue
				}
				// Sync-replication barrier: the worker committed, but the
				// client is not acknowledged until the write is on the
				// standbys (or within the async lag bound).
				if wc.wrote && firstErr == nil && n.SyncWaiter != nil {
					if err := n.SyncWaiter(wc.nodeID); err != nil {
						firstErr = fmt.Errorf("replication wait after commit on node %d: %w", wc.nodeID, err)
					}
				}
				wc.inTxn = false
			}
			if firstErr == nil {
				metSingleNodeCommits.Inc()
			}
			return firstErr
		}
		// Two-phase commit (§3.7.2).
		commitStart = time.Now()
		psp := n.Eng.Tracer.StartSpan(traceID, traceSpanID, "2pc_prepare", st.distID)
		defer psp.Finish()
		for i, wc := range participants {
			if !wc.wrote {
				continue
			}
			gid := fmt.Sprintf("citus_%d_%d_%d", n.ID, localXID, i)
			met2pcPrepares.Inc()
			// 2pc.prepare, keyed by worker node ID: chaos schedules stop
			// here (gate) to crash a participant, or fail the prepare
			// outright — either way the transaction must abort everywhere.
			err := fault.CheckKey(fault.Point2PCPrepare, strconv.Itoa(wc.nodeID))
			if err == nil {
				_, err = wc.conn.Query("PREPARE TRANSACTION " + types.QuoteString(gid))
			}
			if err != nil {
				wc.broken = true
				// abort everything prepared or open so far
				for _, p := range prepared {
					_, _ = p.wc.conn.Query("ROLLBACK PREPARED " + types.QuoteString(p.gid))
					p.wc.inTxn = false
				}
				prepared = nil
				met2pcAborts.Inc()
				return fmt.Errorf("prepare on node %d failed: %w", wc.nodeID, err)
			}
			wc.inTxn = false
			prepared = append(prepared, preparedConn{wc: wc, gid: gid})
		}
		// Read-only participants just commit.
		for _, wc := range participants {
			if wc.inTxn {
				_, _ = wc.conn.Query("COMMIT")
				wc.inTxn = false
			}
		}
		// 2pc.commit_record, keyed by dist txn id: this is the moment the
		// commit-record rule pivots on. A failure here means no record
		// became durable, so the abort path (OnEnd with committedRecords
		// still false) rolls back every prepared participant; a delay here
		// widens the prepare→record window the recovery grace period must
		// protect (see RecoverTwoPhaseCommits).
		if err := fault.CheckKey(fault.Point2PCCommitRecord, st.distID); err != nil {
			met2pcAborts.Inc()
			return fmt.Errorf("writing commit records for %s failed: %w", st.distID, err)
		}
		// Write the commit records; their durability with the local commit
		// decides the transaction's fate during recovery. commitMu also
		// serializes against restore-point creation (§3.9).
		n.commitMu.Lock()
		for _, p := range prepared {
			n.commitRecords[p.gid] = struct{}{}
			n.Eng.WAL.Append(wal.Record{Type: wal.RecCommitRecord, GID: p.gid})
		}
		n.commitMu.Unlock()
		committedRecords = true
		return nil
	})

	t.OnEnd(func(committed bool) {
		// Resolve prepared transactions best-effort; failures are left to
		// the recovery daemon, guided by the commit records.
		if len(prepared) > 0 {
			rsp := n.Eng.Tracer.StartSpan(traceID, traceSpanID, "2pc_resolve", st.distID)
			defer rsp.Finish()
		}
		allResolved := true
		for _, p := range prepared {
			// 2pc.commit / 2pc.abort, keyed by worker node ID: a fault here
			// leaves the prepared transaction dangling on that worker, which
			// is exactly the state the recovery daemon must resolve from the
			// commit records.
			var err error
			if committed && committedRecords {
				err = fault.CheckKey(fault.Point2PCCommit, strconv.Itoa(p.wc.nodeID))
				if err == nil {
					_, err = p.wc.conn.Query("COMMIT PREPARED " + types.QuoteString(p.gid))
				}
			} else {
				err = fault.CheckKey(fault.Point2PCAbort, strconv.Itoa(p.wc.nodeID))
				if err == nil {
					_, err = p.wc.conn.Query("ROLLBACK PREPARED " + types.QuoteString(p.gid))
				}
			}
			if err != nil {
				p.wc.broken = true
				allResolved = false
			}
		}
		if committedRecords && allResolved {
			n.commitMu.Lock()
			for _, p := range prepared {
				delete(n.commitRecords, p.gid)
			}
			n.commitMu.Unlock()
		}
		if len(prepared) > 0 {
			if committed && committedRecords {
				met2pcCommits.Inc()
				// Sync-replication barrier after COMMIT PREPARED: the
				// decision is final (commit records are durable), so a wait
				// failure cannot change the outcome — it only delays the
				// client acknowledgment, and timeouts are surfaced through
				// the repl_sync_timeouts_total counter.
				if n.SyncWaiter != nil && allResolved {
					for _, p := range prepared {
						_ = n.SyncWaiter(p.wc.nodeID)
					}
				}
			} else {
				met2pcAborts.Inc()
			}
			if !commitStart.IsZero() {
				metCommitLatency.ObserveSince(commitStart)
			}
		}
		// Abort any connection still holding an open transaction block
		// (statement failure or local rollback).
		for _, wc := range st.txnConns() {
			if wc.inTxn {
				if _, err := wc.conn.Query("ROLLBACK"); err != nil {
					wc.broken = true
				}
				wc.inTxn = false
			}
		}
		n.releaseSessionConns(st)
	})
}

// txnConns flattens the session's pinned connections.
func (st *sessState) txnConns() []*workerConn {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []*workerConn
	for _, conns := range st.conns {
		out = append(out, conns...)
	}
	return out
}

// releaseSessionConns returns the session's pinned connections to the
// shared pools and resets per-transaction state.
func (n *Node) releaseSessionConns(st *sessState) {
	st.mu.Lock()
	conns := st.conns
	st.conns = make(map[int][]*workerConn)
	st.groupConn = make(map[int64]*workerConn)
	st.registered = false
	st.distID = ""
	st.mu.Unlock()
	for nodeID, list := range conns {
		p, err := n.poolFor(nodeID)
		if err != nil {
			continue
		}
		for _, wc := range list {
			if wc.broken || wc.inTxn || (wc.dirty && !n.resetWorkerSession(wc)) {
				p.Discard(wc.conn)
			} else {
				p.Put(wc.conn)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// 2PC recovery daemon (§3.7.2)

func (n *Node) recoveryLoop() {
	ticker := time.NewTicker(n.Cfg.RecoveryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			n.RecoverTwoPhaseCommits()
		}
	}
}

// RecoverTwoPhaseCommits compares pending prepared transactions on every
// node against the local commit records: "If a commit record is present for
// a prepared transaction, the coordinator committed hence the prepared
// transaction must also commit. Conversely, if no record is present for a
// transaction that has ended, the prepared transaction must abort." Each
// coordinator only recovers the transactions it initiated. Returns the
// number of transactions resolved.
func (n *Node) RecoverTwoPhaseCommits() int {
	myPrefix := fmt.Sprintf("citus_%d_", n.ID)
	grace := n.Cfg.RecoveryGrace
	resolved := 0
	// Standbys are deliberately excluded: their prepared transactions are
	// replicas of a primary's, and the stream will deliver the COMMIT
	// PREPARED / ROLLBACK PREPARED outcome. Resolving them here would race
	// the stream and could roll back a transaction the primary committed.
	for _, node := range n.Meta.ActiveNodes() {
		n.withNodeConn(node.ID, func(c *wire.Conn) error {
			pendings, err := c.ListPrepared()
			if err != nil {
				return err
			}
			var firstErr error
			for _, p := range pendings {
				if !strings.HasPrefix(p.GID, myPrefix) {
					continue
				}
				// Grace period: a transaction prepared moments ago almost
				// certainly has a live coordinator txn about to write its
				// commit record and resolve it. The Active check below
				// covers most of that window, but it reads *current* state
				// while this ListPrepared snapshot may be stale — the
				// coordinator can finish (txn no longer active, records
				// already deleted) after the snapshot was taken, and the
				// daemon would wrongly ROLLBACK PREPARED a transaction whose
				// COMMIT PREPARED already happened. Skipping young prepared
				// transactions closes that race; WAL-adopted orphans report
				// infinite age and are never graced.
				if grace > 0 && p.AgeNs < int64(grace) {
					continue
				}
				// still running locally? (the transaction may be between
				// prepare and commit-prepared right now)
				if xid, ok := gidLocalXID(p.GID); ok {
					if _, active := n.Eng.Txns.Active(xid); active {
						continue
					}
				}
				n.commitMu.Lock()
				_, committed := n.commitRecords[p.GID]
				n.commitMu.Unlock()
				var qerr error
				if committed {
					_, qerr = c.Query("COMMIT PREPARED " + types.QuoteString(p.GID))
				} else {
					_, qerr = c.Query("ROLLBACK PREPARED " + types.QuoteString(p.GID))
				}
				if qerr == nil {
					resolved++
				} else if firstErr == nil {
					firstErr = qerr
				}
			}
			return firstErr
		})
	}
	metRecoveryResolved.Add(int64(resolved))
	return resolved
}

// gidLocalXID parses the coordinator-local XID out of a 2PC gid.
func gidLocalXID(gid string) (uint64, bool) {
	parts := strings.Split(gid, "_")
	if len(parts) != 4 {
		return 0, false
	}
	xid, err := strconv.ParseUint(parts[2], 10, 64)
	return xid, err == nil
}

// withNodeConn borrows a pooled connection to a node. If fn reports an
// error the connection is discarded instead of returned: a failed round
// trip (connection drop, node crash) leaves it suspect, and recycling it
// would wedge every later daemon poll on a dead connection.
func (n *Node) withNodeConn(nodeID int, fn func(*wire.Conn) error) {
	p, err := n.poolFor(nodeID)
	if err != nil {
		return
	}
	c, err := p.Get()
	if err != nil {
		return
	}
	if err := fn(c); err != nil {
		p.Discard(c)
		return
	}
	p.Put(c)
}

// ---------------------------------------------------------------------------
// Distributed deadlock detection (§3.7.3)

func (n *Node) deadlockLoop() {
	ticker := time.NewTicker(n.Cfg.DeadlockInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			n.CheckDistributedDeadlock()
		}
	}
}

// CheckDistributedDeadlock polls every node's waits-for edges, merges the
// processes that belong to the same distributed transaction, and cancels
// the youngest distributed transaction of any cycle. Returns the cancelled
// distributed transaction id, or "".
//
// The same poll piggybacks the nodes' SSI rw-antidependency edges
// (LockGraphEx carries both in one round trip) and dooms any in-flight
// distributed transaction that already forms a dangerous structure in the
// merged conflict graph — the background half of cluster-wide pivot abort.
func (n *Node) CheckDistributedDeadlock() string {
	metDeadlockPolls.Inc()
	type edge struct{ from, to string }
	var edges []edge
	var ssiEdges []ssi.WireEdge
	vertexName := func(nodeID int, xid uint64, dist string) string {
		if dist != "" {
			return "d:" + dist
		}
		return fmt.Sprintf("l:%d:%d", nodeID, xid)
	}
	collect := func(nodeID int, les []engine.LockEdge) {
		for _, le := range les {
			edges = append(edges, edge{
				from: vertexName(nodeID, le.WaiterXID, le.WaiterDist),
				to:   vertexName(nodeID, le.HolderXID, le.HolderDist),
			})
		}
	}
	collect(n.ID, n.Eng.LockGraph())
	ssiEdges = append(ssiEdges, n.Eng.SSIWireEdges()...)
	for _, node := range n.Meta.ActiveNodes() {
		if node.ID == n.ID {
			continue
		}
		n.withNodeConn(node.ID, func(c *wire.Conn) error {
			les, ses, err := c.LockGraphEx()
			if err == nil {
				collect(node.ID, les)
				ssiEdges = append(ssiEdges, ses...)
			}
			return err
		})
	}
	n.doomActivePivots(ssiEdges)

	adj := make(map[string][]string)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	cycle := findCycleStr(adj)
	if len(cycle) == 0 {
		return ""
	}
	metDeadlockCycles.Inc()
	// choose the youngest distributed transaction in the cycle (greatest
	// start timestamp embedded in the dist id)
	victim := ""
	var victimTS int64 = -1
	for _, v := range cycle {
		if !strings.HasPrefix(v, "d:") {
			continue
		}
		dist := v[2:]
		parts := strings.Split(dist, ":")
		if len(parts) != 3 {
			continue
		}
		ts, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			continue
		}
		if ts > victimTS {
			victimTS = ts
			victim = dist
		}
	}
	if victim == "" {
		return "" // purely local cycle: the node-local detector handles it
	}
	metDeadlockVictims.Inc()
	n.Eng.CancelByDistID(victim)
	for _, node := range n.Meta.ActiveNodes() {
		if node.ID == n.ID {
			continue
		}
		n.withNodeConn(node.ID, func(c *wire.Conn) error {
			_, err := c.CancelDistTxn(victim)
			return err
		})
	}
	return victim
}

// findCycleStr finds one cycle in a string-keyed digraph.
func findCycleStr(adj map[string][]string) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var cycle []string
	var dfs func(u string) bool
	dfs = func(u string) bool {
		color[u] = gray
		stack = append(stack, u)
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				if dfs(v) {
					return true
				}
			case gray:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == v {
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return false
	}
	keys := make([]string, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	for _, u := range keys {
		if color[u] == white {
			if dfs(u) {
				return cycle
			}
		}
	}
	return nil
}
