package citus_test

import (
	"fmt"
	"testing"
)

// TestClusterRestoreToPoint exercises the full §3.9 flow: a consistent
// restore point is created across all nodes, more writes land after it,
// and restoring the cluster yields exactly the pre-point state — including
// resolving a transaction that was prepared (with a durable commit record)
// but not yet committed on the worker when the point was taken.
func TestClusterRestoreToPoint(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE facts (k bigint PRIMARY KEY, v bigint)")
	mustExec(t, s, "SELECT create_distributed_table('facts', 'k')")
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO facts (k, v) VALUES (%d, %d)", i, i))
	}

	// a multi-node transaction fully committed before the point
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE facts SET v = 1000 WHERE k = 1")
	mustExec(t, s, "UPDATE facts SET v = 2000 WHERE k = 2")
	mustExec(t, s, "COMMIT")

	// an in-flight 2PC: prepared on a worker, commit record durable on the
	// coordinator, COMMIT PREPARED not yet delivered (the crash window)
	shard, err := c.Meta.ShardForValue("facts", int64(5))
	if err != nil {
		t.Fatal(err)
	}
	nodeID, _ := c.Meta.PrimaryPlacement(shard.ID)
	wc := c.ConnTo(nodeID - 1)
	defer wc.Close()
	gid := "citus_1_777_0"
	for _, q := range []string{
		"BEGIN",
		fmt.Sprintf("UPDATE %s SET v = 5555 WHERE k = 5", shard.ShardName()),
		fmt.Sprintf("PREPARE TRANSACTION '%s'", gid),
	} {
		if _, err := wc.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	c.Coordinator().AddCommitRecordForTest(gid)

	mustExec(t, s, "SELECT create_restore_point('backup_2026_07')")

	// resolve the in-flight 2PC and write more data — all after the point
	if _, err := wc.Query(fmt.Sprintf("COMMIT PREPARED '%s'", gid)); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE facts SET v = 9999 WHERE k = 9")
	mustExec(t, s, "INSERT INTO facts (k, v) VALUES (100, 100)")

	restored, err := c.RestoreToPoint("backup_2026_07")
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	rs := restored.Session()

	// pre-point multi-node transaction: fully present
	expectRows(t, mustExec(t, rs, "SELECT v FROM facts WHERE k = 1"), "1000")
	expectRows(t, mustExec(t, rs, "SELECT v FROM facts WHERE k = 2"), "2000")
	// post-point writes: gone
	expectRows(t, mustExec(t, rs, "SELECT v FROM facts WHERE k = 9"), "9")
	expectRows(t, mustExec(t, rs, "SELECT count(*) FROM facts WHERE k = 100"), "0")
	// the prepared-at-point transaction was completed by 2PC recovery
	// using the durable commit record
	expectRows(t, mustExec(t, rs, "SELECT v FROM facts WHERE k = 5"), "5555")
	// no dangling prepared transactions anywhere
	for _, eng := range restored.Engines {
		if p := eng.Txns.ListPrepared(); len(p) != 0 {
			t.Fatalf("node %s still has prepared transactions: %v", eng.Name, p)
		}
	}
	expectRows(t, mustExec(t, rs, "SELECT count(*) FROM facts"), "30")
}

func TestCitusTablesView(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Session()
	mustExec(t, s, "CREATE TABLE d1 (k bigint PRIMARY KEY)")
	mustExec(t, s, "CREATE TABLE r1 (k bigint PRIMARY KEY)")
	mustExec(t, s, "SELECT create_distributed_table('d1', 'k')")
	mustExec(t, s, "SELECT create_reference_table('r1')")
	res := mustExec(t, s, "SELECT citus_tables()")
	if len(res.Rows) != 2 {
		t.Fatalf("citus_tables rows: %v", res.Rows)
	}
	txt := rowsText(res)
	if !contains(txt, "d1|distributed|k") || !contains(txt, "r1|reference|<none>") {
		t.Fatalf("citus_tables content:\n%s", txt)
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && index(haystack, needle) >= 0
}

func index(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}
