package citus

import (
	"fmt"

	"citusgo/internal/catalog"
	"citusgo/internal/citus/metadata"
	"citusgo/internal/engine"
	"citusgo/internal/expr"
	"citusgo/internal/sql"
	"citusgo/internal/types"
	"citusgo/internal/wire"
)

// utilityHook intercepts utility statements on Citus tables (§3.8: "Citus
// preserves [DDL as transactional, online operations] by taking the same
// locks as PostgreSQL and propagating the DDL commands to shards via the
// executor").
func (n *Node) utilityHook(s *engine.Session, stmt sql.Statement) (bool, *engine.Result, error) {
	switch st := stmt.(type) {
	case *sql.CreateIndexStmt:
		if !n.Meta.IsCitusTable(st.Table) {
			return false, nil, nil
		}
		if err := n.propagateCreateIndex(s, st); err != nil {
			return true, nil, err
		}
		// apply to the local shell table too, so future shards (rebalancer
		// moves, new placements) inherit the index
		if _, err := s.ExecUtilityLocal(st); err != nil {
			return true, nil, err
		}
		n.Meta.BumpVersion()
		return true, &engine.Result{Tag: "CREATE INDEX"}, nil
	case *sql.TruncateStmt:
		if !n.Meta.IsCitusTable(st.Name) {
			return false, nil, nil
		}
		if err := n.forEachShardDDL(s, st.Name, func(sh *metadata.Shard) sql.Statement {
			return &sql.TruncateStmt{Name: sh.ShardName()}
		}); err != nil {
			return true, nil, err
		}
		n.Meta.BumpVersion()
		return true, &engine.Result{Tag: "TRUNCATE TABLE"}, nil
	case *sql.DropTableStmt:
		if !n.Meta.IsCitusTable(st.Name) {
			return false, nil, nil
		}
		if err := n.forEachShardDDL(s, st.Name, func(sh *metadata.Shard) sql.Statement {
			return &sql.DropTableStmt{Name: sh.ShardName(), IfExists: true}
		}); err != nil {
			return true, nil, err
		}
		n.Meta.RemoveTable(st.Name) // bumps the metadata version
		if _, err := s.ExecUtilityLocal(st); err != nil {
			return true, nil, err
		}
		// idle pooled connections hold prepared statements against the
		// dropped shards; discard them rather than revalidate on checkout
		n.flushIdleConns()
		return true, &engine.Result{Tag: "DROP TABLE"}, nil
	case *sql.AlterTableAddColumnStmt:
		if !n.Meta.IsCitusTable(st.Table) {
			return false, nil, nil
		}
		if err := n.forEachShardDDL(s, st.Table, func(sh *metadata.Shard) sql.Statement {
			clone := *st
			clone.Table = sh.ShardName()
			return &clone
		}); err != nil {
			return true, nil, err
		}
		if _, err := s.ExecUtilityLocal(st); err != nil {
			return true, nil, err
		}
		n.refreshSchemaSQL(st.Table)
		n.Meta.BumpVersion()
		return true, &engine.Result{Tag: "ALTER TABLE"}, nil
	case *sql.VacuumStmt:
		if st.Table == "" || !n.Meta.IsCitusTable(st.Table) {
			return false, nil, nil
		}
		// VACUUM on a distributed table runs on all shards in parallel —
		// the paper's point that sharding parallelizes auto-vacuum (§2.3)
		if err := n.forEachShardDDL(s, st.Table, func(sh *metadata.Shard) sql.Statement {
			return &sql.VacuumStmt{Table: sh.ShardName()}
		}); err != nil {
			return true, nil, err
		}
		return true, &engine.Result{Tag: "VACUUM"}, nil
	case *sql.CallStmt:
		return n.maybeDelegateCall(s, st)
	}
	return false, nil, nil
}

// forEachShardDDL fans a DDL statement out to every shard placement.
func (n *Node) forEachShardDDL(s *engine.Session, table string, build func(*metadata.Shard) sql.Statement) error {
	var tasks []task
	for _, sh := range n.Meta.Shards(table) {
		stmt := build(sh)
		for _, nodeID := range n.Meta.Placements(sh.ID) {
			tasks = append(tasks, task{
				nodeID:     nodeID,
				shardGroup: -1,
				sql:        stmt.String(),
				isDDL:      true,
			})
		}
	}
	_, err := n.executeTasks(s, tasks)
	return err
}

// propagateCreateIndex creates per-shard indexes (shard-suffixed names).
func (n *Node) propagateCreateIndex(s *engine.Session, st *sql.CreateIndexStmt) error {
	var tasks []task
	for _, sh := range n.Meta.Shards(st.Table) {
		clone := *st
		clone.Name = fmt.Sprintf("%s_%d", st.Name, sh.ID)
		clone.Table = sh.ShardName()
		for _, nodeID := range n.Meta.Placements(sh.ID) {
			tasks = append(tasks, task{nodeID: nodeID, shardGroup: -1, sql: clone.String(), isDDL: true})
		}
	}
	_, err := n.executeTasks(s, tasks)
	return err
}

// maybeDelegateCall implements stored-procedure delegation (§3.8): a
// procedure registered with a distribution argument is shipped to the
// worker owning the matching shard, avoiding per-statement round trips.
func (n *Node) maybeDelegateCall(s *engine.Session, st *sql.CallStmt) (bool, *engine.Result, error) {
	spec, ok := n.distProcedure(st.Name)
	if !ok || !n.canCoordinate() {
		return false, nil, nil
	}
	if s.InTransaction() {
		// inside a transaction block the coordinator keeps control
		return false, nil, nil
	}
	if spec.ArgIndex >= len(st.Args) {
		return false, nil, nil
	}
	ev, err := expr.Compile(st.Args[spec.ArgIndex], nil)
	if err != nil {
		return false, nil, nil // non-constant distribution argument
	}
	val, err := ev(&expr.Ctx{})
	if err != nil || val == nil {
		return false, nil, nil
	}
	sh, err := n.Meta.ShardForValue(spec.ColocatedWith, val)
	if err != nil {
		return true, nil, err
	}
	nodeID, err := n.Meta.PrimaryPlacement(sh.ID)
	if err != nil {
		return true, nil, err
	}
	if nodeID == n.ID {
		return false, nil, nil // local shard: run the procedure here
	}
	dt, _ := n.Meta.Table(spec.ColocatedWith)
	results, err := n.executeTasks(s, []task{{
		nodeID:     nodeID,
		shardGroup: metadata.ShardGroupID(dt.ColocationID, sh.Index),
		sql:        st.String(),
		isWrite:    true,
	}})
	if err != nil {
		return true, nil, err
	}
	res := results[0]
	if res == nil {
		res = &engine.Result{Tag: "CALL"}
	}
	return true, res, nil
}

// ---------------------------------------------------------------------------
// Shard creation

// schemaStatements reconstructs a table's CREATE TABLE plus secondary
// CREATE INDEX statements from the local catalog.
func (n *Node) schemaStatements(table string) (*sql.CreateTableStmt, []*sql.CreateIndexStmt, error) {
	tbl, ok := n.Eng.Catalog.Get(table)
	if !ok {
		return nil, nil, fmt.Errorf("relation %q does not exist", table)
	}
	ct := &sql.CreateTableStmt{Name: tbl.Name, Using: tbl.Using}
	pk := map[int]bool{}
	for _, ord := range tbl.PrimaryKey {
		pk[ord] = true
	}
	for i, c := range tbl.Columns {
		ct.Columns = append(ct.Columns, sql.ColumnDef{
			Name:    c.Name,
			Type:    c.Type,
			NotNull: c.NotNull,
			Default: c.Default,
		})
		_ = i
	}
	for _, ord := range tbl.PrimaryKey {
		ct.PrimaryKey = append(ct.PrimaryKey, tbl.Columns[ord].Name)
	}
	var indexes []*sql.CreateIndexStmt
	for _, idx := range tbl.Indexes {
		if idx.Name == tbl.Name+"_pkey" {
			continue
		}
		indexes = append(indexes, &sql.CreateIndexStmt{
			Name:   idx.Name,
			Table:  idx.Table,
			Using:  idx.Using,
			Exprs:  idx.Exprs,
			Unique: idx.Unique,
		})
	}
	return ct, indexes, nil
}

// refreshSchemaSQL re-captures the shell table's schema into the metadata
// after ALTER TABLE.
func (n *Node) refreshSchemaSQL(table string) {
	if ct, _, err := n.schemaStatements(table); err == nil {
		if dt, ok := n.Meta.Table(table); ok {
			dt.SchemaSQL = ct.String()
		}
	}
}

// createShardOnNode creates one shard table (and its secondary indexes) on
// a node.
func (n *Node) createShardOnNode(s *engine.Session, nodeID int, shard *metadata.Shard, ct *sql.CreateTableStmt, indexes []*sql.CreateIndexStmt) error {
	shardCT := *ct
	shardCT.Name = shard.ShardName()
	stmts := []string{shardCT.String()}
	for _, idx := range indexes {
		shardIdx := *idx
		shardIdx.Name = fmt.Sprintf("%s_%d", idx.Name, shard.ID)
		shardIdx.Table = shard.ShardName()
		stmts = append(stmts, shardIdx.String())
	}
	var tasks []task
	for _, q := range stmts {
		tasks = append(tasks, task{nodeID: nodeID, shardGroup: -1, sql: q, isDDL: true})
	}
	// DDL tasks run sequentially on one connection: the index depends on
	// the table existing.
	for _, t := range tasks {
		if _, err := n.executeTasks(s, []task{t}); err != nil {
			return err
		}
	}
	return nil
}

// snapshotLocalRows captures the shell table's rows before the metadata is
// registered (afterwards a SELECT would route to the still-empty shards).
func (n *Node) snapshotLocalRows(s *engine.Session, table string) ([]types.Row, error) {
	res, err := s.Exec("SELECT * FROM " + table)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// moveLocalDataToShards routes the shell table's existing rows to the new
// shards (create_distributed_table preserves existing data).
func (n *Node) moveLocalDataToShards(s *engine.Session, table string, dt *metadata.DistTable, rows []types.Row) error {
	if len(rows) == 0 {
		return nil
	}
	tbl, _ := n.Eng.Catalog.Get(table)
	distOrd := tbl.ColumnIndex(dt.DistColumn)
	cols := tbl.ColumnNames()

	shards := n.Meta.Shards(table)
	byShard := map[int][]types.Row{}
	for _, row := range rows {
		if dt.Type == metadata.ReferenceTable {
			byShard[0] = append(byShard[0], row)
			continue
		}
		sh, err := n.Meta.ShardForValue(table, row[distOrd])
		if err != nil {
			return err
		}
		byShard[sh.Index] = append(byShard[sh.Index], row)
	}
	for idx, rows := range byShard {
		sh := shards[idx]
		for _, nodeID := range n.Meta.Placements(sh.ID) {
			var copyErr error
			n.withNodeConn(nodeID, func(c *wire.Conn) error {
				_, copyErr = c.Copy(sh.ShardName(), cols, rows)
				return copyErr
			})
			if copyErr != nil {
				return copyErr
			}
		}
	}
	// the shell table stays empty from here on
	sess := n.Eng.NewSession()
	_, err := sess.ExecUtilityLocal(&sql.TruncateStmt{Name: table})
	return err
}

// localColumnType returns a column's type from the local catalog.
func (n *Node) localColumnType(table, column string) (types.Type, *catalog.Table, error) {
	tbl, ok := n.Eng.Catalog.Get(table)
	if !ok {
		return types.Unknown, nil, fmt.Errorf("relation %q does not exist", table)
	}
	ord := tbl.ColumnIndex(column)
	if ord == -1 {
		return types.Unknown, nil, fmt.Errorf("column %q of relation %q does not exist", column, table)
	}
	return tbl.Columns[ord].Type, tbl, nil
}
