// Package repl is the WAL-shipping replication substrate: it streams a
// primary node's WAL to N standby nodes and applies it there, the
// reproduction of the PostgreSQL streaming replication the paper assumes
// underneath every Citus worker (§2, §3.7).
//
// Each standby runs one shipper goroutine tailing the primary's log via
// wal.Stream. Every shipped record is first appended to the standby's own
// WAL (the standby "has the WAL", so a promoted or restarted standby can
// itself be replayed or replicated from) and then applied incrementally
// through wal.ApplyRecord; the stream ack then advances, which is what
// sync-commit waits and lag accounting observe.
//
// Two modes, chosen per cluster:
//
//   - ModeSync: after a write commits locally, the commit path blocks
//     until every live standby has acknowledged the commit's LSN. A
//     client-acknowledged write therefore survives primary failure — the
//     zero-loss half of the chaos proof.
//   - ModeAsync: commits return immediately; the write path only throttles
//     when a standby trails by more than MaxAsyncLag records, which is
//     what makes async staleness bounded rather than unbounded.
//
// Failover is Manager.Promote: seal the failed primary's log, let the
// furthest-ahead standby drain the sealed stream to its tip ("replay to
// tip"), then flip the catalog roles and bump the metadata version so
// every cached plan re-resolves routing. Crash points at the ship, apply,
// and promote seams (fault.PointReplShip/Apply/Promote) let chaos tests
// cut the schedule at exactly these steps.
package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/fault"
	"citusgo/internal/obs"
	"citusgo/internal/wal"
)

// Mode selects how commits interact with replication.
type Mode int

const (
	// ModeSync blocks the commit path until standbys ack (no acknowledged
	// write can be lost to a primary failure).
	ModeSync Mode = iota
	// ModeAsync lets commits return before standbys apply, with lag
	// bounded by Config.MaxAsyncLag.
	ModeAsync
)

func (m Mode) String() string {
	if m == ModeAsync {
		return "async"
	}
	return "sync"
}

// Config tunes the replication substrate.
type Config struct {
	Mode Mode
	// SyncTimeout bounds a sync-commit wait (and each promotion drain
	// step). Default 5s. A timed-out wait does not undo the local commit —
	// it is counted and surfaced, exactly like a PostgreSQL sync standby
	// falling out of quorum.
	SyncTimeout time.Duration
	// MaxAsyncLag is the async-mode staleness bound in WAL records
	// (default 256): a write path finding a standby further behind blocks
	// until it catches back into the bound.
	MaxAsyncLag int64
	// PollInterval is the shipper's stream wait quantum (default 10ms);
	// waking is event-driven, this only bounds shutdown latency.
	PollInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 5 * time.Second
	}
	if c.MaxAsyncLag <= 0 {
		c.MaxAsyncLag = 256
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	return c
}

// StandbyTarget describes one standby node a Group ships to.
type StandbyTarget struct {
	NodeID int
	Name   string
	WAL    *wal.Log    // standby's own log; shipped records are appended here
	Apply  wal.Applier // incremental apply target (engine.ReplayTarget())
}

type standby struct {
	StandbyTarget
	stream  *wal.Stream
	applied atomic.Int64
	failed  atomic.Bool
	done    chan struct{}

	shipped *obs.Counter
	lag     *obs.Gauge
}

var (
	metShipped = obs.Default().Counter("repl_records_shipped_total",
		"WAL records shipped to and applied on a standby.", "standby")
	metLag = obs.Default().Gauge("repl_lag_records",
		"Replication lag in WAL records, per standby.", "standby")
	metSyncWaits = obs.Default().Counter("repl_sync_waits_total",
		"Sync-replication commit waits.").With()
	metSyncTimeouts = obs.Default().Counter("repl_sync_timeouts_total",
		"Sync-replication commit waits that timed out (standby out of quorum).").With()
	metSyncWaitNs = obs.Default().Histogram("repl_sync_wait_ns",
		"Time the commit path spent waiting for standby acks, in nanoseconds.", nil).With()
	metPromotions = obs.Default().Counter("repl_promotions_total",
		"Standby promotions completed.").With()
	metApplyErrors = obs.Default().Counter("repl_apply_errors_total",
		"Records a standby failed to apply (standby dropped from the group).", "standby")
)

// Group replicates one primary's WAL to its standbys.
type Group struct {
	primaryID   int
	primaryName string
	log         *wal.Log
	cfg         Config

	mu       sync.Mutex
	standbys []*standby
	stopped  bool
}

// NewGroup starts shipping primary's WAL to the targets. Shipping begins
// at LSN 0: groups are created at node boot, before any writes exist.
func NewGroup(primaryID int, primaryName string, log *wal.Log, cfg Config, targets []StandbyTarget) *Group {
	g := &Group{primaryID: primaryID, primaryName: primaryName, log: log, cfg: cfg.withDefaults()}
	for _, t := range targets {
		sb := &standby{
			StandbyTarget: t,
			stream:        log.StreamFrom(0),
			done:          make(chan struct{}),
			shipped:       metShipped.With(t.Name),
			lag:           metLag.With(t.Name),
		}
		g.standbys = append(g.standbys, sb)
		go g.ship(sb)
	}
	return g
}

// resumeStandby re-parents an existing standby onto this group's log after
// a promotion: the standby's applied prefix is identical to the new
// primary's log prefix (both copied the old primary's WAL), so the stream
// resumes exactly at the standby's applied LSN.
func (g *Group) resumeStandby(t StandbyTarget, appliedLSN int64) {
	sb := &standby{
		StandbyTarget: t,
		stream:        g.log.StreamFrom(appliedLSN),
		done:          make(chan struct{}),
		shipped:       metShipped.With(t.Name),
		lag:           metLag.With(t.Name),
	}
	sb.applied.Store(appliedLSN)
	g.mu.Lock()
	g.standbys = append(g.standbys, sb)
	g.mu.Unlock()
	go g.ship(sb)
}

// ship is the per-standby replication loop.
func (g *Group) ship(sb *standby) {
	defer close(sb.done)
	for {
		rec, ok := sb.stream.Next(g.cfg.PollInterval)
		if !ok {
			if sb.stream.Done() {
				return // closed, or sealed log drained to tip
			}
			sb.lag.Set(sb.stream.Lag())
			continue
		}
		// repl.ship models the network hop: delays grow lag, errors are
		// retried from the same record (streaming replication never skips),
		// panics kill the shipper like a walsender crash.
		for {
			if err := fault.CheckKey(fault.PointReplShip, sb.Name); err == nil {
				break
			}
			if sb.stream.Done() {
				return
			}
			time.Sleep(g.cfg.PollInterval)
		}
		if err := fault.CheckKey(fault.PointReplApply, sb.Name); err == nil {
			err = g.apply(sb, rec)
			if err != nil {
				metApplyErrors.With(sb.Name).Inc()
				sb.failed.Store(true)
				return
			}
		} else {
			// injected apply error: the standby is wedged (disk full,
			// divergence) and drops out of the group
			metApplyErrors.With(sb.Name).Inc()
			sb.failed.Store(true)
			return
		}
		sb.stream.Ack(rec.LSN)
		sb.applied.Store(rec.LSN)
		sb.shipped.Inc()
		sb.lag.Set(sb.stream.Lag())
	}
}

// apply copies the record into the standby's own WAL (durability first, so
// the standby can in turn be replayed, replicated, or promoted) and then
// applies it to the standby engine.
func (g *Group) apply(sb *standby, rec wal.Record) error {
	if sb.WAL != nil {
		if lsn := sb.WAL.Append(stripLSN(rec)); lsn == 0 {
			return errors.New("standby WAL sealed (standby crashed)")
		}
	}
	return wal.ApplyRecord(sb.Apply, rec)
}

// stripLSN clears the primary-assigned LSN so the standby's log assigns
// its own. Both logs start empty and append the same records in the same
// order, so the LSNs coincide — which is what lets a re-parented standby
// resume from its applied position after a promotion.
func stripLSN(rec wal.Record) wal.Record {
	rec.LSN = 0
	return rec
}

// PrimaryID returns the node whose WAL this group ships.
func (g *Group) PrimaryID() int { return g.primaryID }

// live returns the standbys still shipping (not failed, not detached).
func (g *Group) live() []*standby {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*standby, 0, len(g.standbys))
	for _, sb := range g.standbys {
		if !sb.failed.Load() {
			out = append(out, sb)
		}
	}
	return out
}

// Applied returns each live standby's applied LSN by node ID.
func (g *Group) Applied() map[int]int64 {
	out := map[int]int64{}
	for _, sb := range g.live() {
		out[sb.NodeID] = sb.applied.Load()
	}
	return out
}

// WaitSync blocks until every live standby has applied at least lsn, or
// the timeout elapses. Used by the commit path in sync mode.
func (g *Group) WaitSync(lsn int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		behind := 0
		for _, sb := range g.live() {
			if sb.applied.Load() < lsn {
				behind++
			}
		}
		if behind == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: %d standby(s) of %s behind LSN %d after %v",
				behind, g.primaryName, lsn, timeout)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// WaitLag blocks until every live standby trails the log tip by at most
// maxLag records — the async-mode flow control that bounds staleness.
func (g *Group) WaitLag(maxLag int64, timeout time.Duration) error {
	tip := g.log.LastLSN()
	if tip <= maxLag {
		return nil
	}
	return g.WaitSync(tip-maxLag, timeout)
}

// MaxLag returns the largest lag (in records) among live standbys.
func (g *Group) MaxLag() int64 {
	var max int64
	tip := g.log.LastLSN()
	for _, sb := range g.live() {
		if lag := tip - sb.applied.Load(); lag > max {
			max = lag
		}
	}
	return max
}

// Stop detaches every standby and waits for the shippers to exit.
func (g *Group) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	standbys := append([]*standby(nil), g.standbys...)
	g.mu.Unlock()
	for _, sb := range standbys {
		sb.stream.Close()
	}
	for _, sb := range standbys {
		<-sb.done
	}
}

// Manager tracks the replication group of every replicated primary and
// owns the failover sequence.
type Manager struct {
	mu     sync.Mutex
	groups map[int]*Group // by primary node ID
	meta   *metadata.Catalog
	cfg    Config
}

// NewManager creates a manager writing role flips into meta.
func NewManager(meta *metadata.Catalog, cfg Config) *Manager {
	return &Manager{groups: make(map[int]*Group), meta: meta, cfg: cfg.withDefaults()}
}

// Mode returns the configured replication mode.
func (m *Manager) Mode() Mode { return m.cfg.Mode }

// AddGroup registers (and starts) replication for one primary.
func (m *Manager) AddGroup(primaryID int, primaryName string, log *wal.Log, targets []StandbyTarget) *Group {
	g := NewGroup(primaryID, primaryName, log, m.cfg, targets)
	m.mu.Lock()
	m.groups[primaryID] = g
	m.mu.Unlock()
	return g
}

// Group returns the replication group whose primary is nodeID, if any.
func (m *Manager) Group(nodeID int) (*Group, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[nodeID]
	return g, ok
}

// AddStandby attaches a standby to an existing primary's group, resuming
// the stream at the standby's applied position. This is the
// restart-after-failover path: the old primary's recovered engine rejoins
// the cluster as a standby of the node promoted in its place. Its replayed
// WAL is a prefix of the new primary's log (promotion drained the winner to
// the sealed tip before flipping roles) and LSNs coincide across the two
// logs, so shipping resumes exactly at appliedLSN with no gap or overlap.
func (m *Manager) AddStandby(primaryID int, t StandbyTarget, appliedLSN int64) error {
	g, ok := m.Group(primaryID)
	if !ok {
		return fmt.Errorf("repl: node %d has no replication group", primaryID)
	}
	g.resumeStandby(t, appliedLSN)
	return nil
}

// Wait is the commit-path hook: after a write on nodeID it enforces the
// mode's durability contract — full standby ack in sync mode, bounded lag
// in async mode. Unreplicated nodes return immediately.
func (m *Manager) Wait(nodeID int) error {
	g, ok := m.Group(nodeID)
	if !ok {
		return nil
	}
	metSyncWaits.Inc()
	start := time.Now()
	var err error
	if m.cfg.Mode == ModeSync {
		err = g.WaitSync(g.log.LastLSN(), m.cfg.SyncTimeout)
	} else {
		err = g.WaitLag(m.cfg.MaxAsyncLag, m.cfg.SyncTimeout)
	}
	metSyncWaitNs.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		metSyncTimeouts.Inc()
	}
	return err
}

// Promote fails over a crashed primary: the sealed log is drained to its
// tip on the furthest-ahead standby, the catalog roles flip (bumping the
// metadata version so cached plans invalidate), surviving standbys are
// re-parented onto the new primary's log, and the new primary's node ID is
// returned. The caller seals the primary's WAL by crashing the node;
// Promote seals again defensively — promotion declares the primary dead,
// so no post-promotion append of its may be acknowledged.
func (m *Manager) Promote(failedPrimary int) (int, error) {
	m.mu.Lock()
	g, ok := m.groups[failedPrimary]
	if ok {
		delete(m.groups, failedPrimary)
	}
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("repl: node %d has no replication group", failedPrimary)
	}
	g.log.Seal()

	if err := fault.CheckKey(fault.PointReplPromote, "drain"); err != nil {
		return 0, fmt.Errorf("repl: promotion drain: %w", err)
	}
	// Pick the furthest-ahead live standby, then let it replay the sealed
	// log to the tip. Draining cannot stall forever: the log is sealed, so
	// the stream has a fixed endpoint.
	live := g.live()
	if len(live) == 0 {
		return 0, fmt.Errorf("repl: node %d has no live standby to promote", failedPrimary)
	}
	winner := live[0]
	for _, sb := range live[1:] {
		if sb.applied.Load() > winner.applied.Load() {
			winner = sb
		}
	}
	tip := g.log.LastLSN()
	deadline := time.Now().Add(g.cfg.SyncTimeout)
	for winner.applied.Load() < tip {
		if winner.failed.Load() {
			return 0, fmt.Errorf("repl: standby %s failed during promotion drain", winner.Name)
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("repl: standby %s stuck at LSN %d draining to %d",
				winner.Name, winner.applied.Load(), tip)
		}
		time.Sleep(50 * time.Microsecond)
	}

	if err := fault.CheckKey(fault.PointReplPromote, "flip"); err != nil {
		return 0, fmt.Errorf("repl: promotion flip: %w", err)
	}
	if err := m.meta.PromoteNode(failedPrimary, winner.NodeID); err != nil {
		return 0, err
	}
	// Stop the old group's shippers, then re-parent the surviving standbys
	// onto the new primary's WAL at their applied positions.
	g.Stop()
	var ng *Group
	for _, sb := range g.live() {
		if sb.NodeID == winner.NodeID || sb.WAL == nil {
			continue
		}
		if ng == nil {
			ng = m.AddGroup(winner.NodeID, winner.Name, winner.WAL, nil)
		}
		ng.resumeStandby(sb.StandbyTarget, sb.applied.Load())
	}
	if ng == nil && winner.WAL != nil {
		// keep an (empty) group so future AddStandby/rewiring has a home;
		// sync waits on a group with no standbys return immediately.
		m.AddGroup(winner.NodeID, winner.Name, winner.WAL, nil)
	}
	metPromotions.Inc()
	return winner.NodeID, nil
}

// Lag reports the largest standby lag of a primary's group (0 when the
// node is unreplicated).
func (m *Manager) Lag(nodeID int) int64 {
	g, ok := m.Group(nodeID)
	if !ok {
		return 0
	}
	return g.MaxLag()
}

// Stop halts every group.
func (m *Manager) Stop() {
	m.mu.Lock()
	groups := make([]*Group, 0, len(m.groups))
	for _, g := range m.groups {
		groups = append(groups, g)
	}
	m.groups = make(map[int]*Group)
	m.mu.Unlock()
	for _, g := range groups {
		g.Stop()
	}
}
