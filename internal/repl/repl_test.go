package repl

import (
	"sync"
	"testing"
	"time"

	"citusgo/internal/citus/metadata"
	"citusgo/internal/fault"
	"citusgo/internal/types"
	"citusgo/internal/wal"
)

// memApplier is a minimal wal.Applier for tests: it records committed
// rows per table, keyed by the transaction-status records.
type memApplier struct {
	mu       sync.Mutex
	rows     map[string][]types.Row
	commits  map[uint64]bool
	prepared map[string]uint64
	applied  int
}

func newMemApplier() *memApplier {
	return &memApplier{rows: map[string][]types.Row{}, commits: map[uint64]bool{}, prepared: map[string]uint64{}}
}

func (m *memApplier) ApplyDDL(string) error { return nil }
func (m *memApplier) ApplyInsert(xid uint64, table string, row types.Row) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows[table] = append(m.rows[table], row)
	m.applied++
	return nil
}
func (m *memApplier) ApplyDelete(uint64, string, types.Row) error { return nil }
func (m *memApplier) ApplyCommit(xid uint64) {
	m.mu.Lock()
	m.commits[xid] = true
	m.mu.Unlock()
}
func (m *memApplier) ApplyAbort(uint64) {}
func (m *memApplier) ApplyPrepare(xid uint64, gid string) {
	m.mu.Lock()
	m.prepared[gid] = xid
	m.mu.Unlock()
}
func (m *memApplier) ApplyCommitPrepared(gid string) {
	m.mu.Lock()
	delete(m.prepared, gid)
	m.mu.Unlock()
}
func (m *memApplier) ApplyAbortPrepared(gid string) {
	m.mu.Lock()
	delete(m.prepared, gid)
	m.mu.Unlock()
}

func (m *memApplier) rowCount(table string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rows[table])
}

func appendTxn(l *wal.Log, xid uint64, table string, k int64) {
	l.Append(wal.Record{Type: wal.RecInsert, XID: xid, Table: table, Row: types.Row{k}})
	l.Append(wal.Record{Type: wal.RecCommit, XID: xid})
}

func TestSyncShippingAppliesAndAcks(t *testing.T) {
	fault.Reset()
	primary := wal.New()
	a := newMemApplier()
	sbLog := wal.New()
	g := NewGroup(2, "w1", primary, Config{Mode: ModeSync},
		[]StandbyTarget{{NodeID: 4, Name: "w1-sb1", WAL: sbLog, Apply: a}})
	defer g.Stop()

	for i := 0; i < 10; i++ {
		appendTxn(primary, uint64(10+i), "t", int64(i))
		if err := g.WaitSync(primary.LastLSN(), time.Second); err != nil {
			t.Fatalf("sync wait %d: %v", i, err)
		}
	}
	if got := a.rowCount("t"); got != 10 {
		t.Fatalf("standby applied %d rows, want 10", got)
	}
	// the standby's own WAL mirrors the primary's, record for record
	if sbLog.Len() != primary.Len() {
		t.Fatalf("standby WAL %d records, primary %d", sbLog.Len(), primary.Len())
	}
	for i, rec := range sbLog.Records() {
		prec := primary.Records()[i]
		if rec.LSN != prec.LSN || rec.Type != prec.Type || rec.XID != prec.XID {
			t.Fatalf("record %d diverged: standby %+v primary %+v", i, rec, prec)
		}
	}
}

func TestShipErrorRetriesWithoutSkipping(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	primary := wal.New()
	a := newMemApplier()
	g := NewGroup(2, "w1", primary, Config{Mode: ModeSync, PollInterval: time.Millisecond},
		[]StandbyTarget{{NodeID: 4, Name: "w1-sb1", Apply: a}})
	defer g.Stop()

	// every third ship attempt fails; the shipper must retry the same
	// record, never skip it
	fault.Arm(fault.Rule{Point: fault.PointReplShip, Action: fault.ActError, Prob: 0.34})
	for i := 0; i < 30; i++ {
		appendTxn(primary, uint64(10+i), "t", int64(i))
	}
	if err := g.WaitSync(primary.LastLSN(), 5*time.Second); err != nil {
		t.Fatalf("sync wait with flaky ship: %v", err)
	}
	if got := a.rowCount("t"); got != 30 {
		t.Fatalf("standby applied %d rows, want 30", got)
	}
}

func TestAsyncLagIsBounded(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	primary := wal.New()
	a := newMemApplier()
	const maxLag = 8
	g := NewGroup(2, "w1", primary, Config{Mode: ModeAsync, MaxAsyncLag: maxLag, PollInterval: time.Millisecond},
		[]StandbyTarget{{NodeID: 4, Name: "w1-sb1", Apply: a}})
	defer g.Stop()

	// a slow standby: every apply takes 200µs
	fault.Arm(fault.Rule{Point: fault.PointReplApply, Action: fault.ActDelay, Delay: 200 * time.Microsecond})
	for i := 0; i < 100; i++ {
		appendTxn(primary, uint64(10+i), "t", int64(i))
		if err := g.WaitLag(maxLag, 5*time.Second); err != nil {
			t.Fatalf("lag wait: %v", err)
		}
		if lag := g.MaxLag(); lag > maxLag {
			t.Fatalf("write %d observed lag %d > bound %d", i, lag, maxLag)
		}
	}
}

func promoteCatalog() *metadata.Catalog {
	c := metadata.NewCatalog()
	c.AddNode(&metadata.Node{ID: 1, Name: "c", IsCoordinator: true})
	c.AddNode(&metadata.Node{ID: 2, Name: "w1"})
	c.AddNode(&metadata.Node{ID: 4, Name: "w1-sb1", Standby: true, StandbyOf: 2})
	c.AddNode(&metadata.Node{ID: 5, Name: "w1-sb2", Standby: true, StandbyOf: 2})
	return c
}

func TestPromoteDrainsToTipAndFlipsCatalog(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	meta := promoteCatalog()
	m := NewManager(meta, Config{Mode: ModeSync})
	primary := wal.New()
	a1, a2 := newMemApplier(), newMemApplier()
	l1, l2 := wal.New(), wal.New()
	m.AddGroup(2, "w1", primary, []StandbyTarget{
		{NodeID: 4, Name: "w1-sb1", WAL: l1, Apply: a1},
		{NodeID: 5, Name: "w1-sb2", WAL: l2, Apply: a2},
	})
	defer m.Stop()

	// make the second standby lag far behind, then crash the primary:
	// promotion must pick the caught-up standby and drain it to the tip
	fault.Arm(fault.Rule{Point: fault.PointReplApply, Key: "w1-sb2", Action: fault.ActDelay, Delay: 2 * time.Millisecond})
	for i := 0; i < 50; i++ {
		appendTxn(primary, uint64(10+i), "t", int64(i))
	}
	if err := m.Wait(2); err != nil { // sync mode: both standbys acked
		t.Fatalf("pre-crash sync wait: %v", err)
	}
	fault.Disarm(fault.PointReplApply)

	primary.Seal() // crash instant
	v := meta.Version()
	newID, err := m.Promote(2)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if newID != 4 && newID != 5 {
		t.Fatalf("promoted node %d", newID)
	}
	if meta.Version() == v {
		t.Fatal("promotion did not bump metadata version")
	}
	winner := a1
	if newID == 5 {
		winner = a2
	}
	if got := winner.rowCount("t"); got != 50 {
		t.Fatalf("promoted standby has %d rows, want 50 (replay to tip)", got)
	}
	// the surviving standby is re-parented onto the new primary
	g, ok := m.Group(newID)
	if !ok {
		t.Fatal("no group for new primary")
	}
	applied := g.Applied()
	if len(applied) != 1 {
		t.Fatalf("re-parented standbys: %v", applied)
	}
	// writes on the new primary now replicate to the survivor
	newLog := l1
	if newID == 5 {
		newLog = l2
	}
	appendTxn(newLog, 1<<41, "t", 999)
	if err := g.WaitSync(newLog.LastLSN(), 5*time.Second); err != nil {
		t.Fatalf("post-promotion sync wait: %v", err)
	}
	survivor := a2
	if newID == 5 {
		survivor = a1
	}
	if got := survivor.rowCount("t"); got != 51 {
		t.Fatalf("survivor has %d rows, want 51 (re-parented stream)", got)
	}
}

func TestPromoteWithNoLiveStandbyFails(t *testing.T) {
	fault.Reset()
	meta := promoteCatalog()
	m := NewManager(meta, Config{})
	primary := wal.New()
	m.AddGroup(2, "w1", primary, nil)
	defer m.Stop()
	primary.Seal()
	if _, err := m.Promote(2); err == nil {
		t.Fatal("promotion with no standby succeeded")
	}
	if _, err := m.Promote(99); err == nil {
		t.Fatal("promotion of unreplicated node succeeded")
	}
}
