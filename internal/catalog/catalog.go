// Package catalog holds per-node schema metadata: tables, columns, and
// index definitions. The distributed layer keeps its own metadata (shard
// placements etc.) in internal/citus/metadata; this package is the local
// equivalent of PostgreSQL's pg_class/pg_attribute.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"citusgo/internal/sql"
	"citusgo/internal/types"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    types.Type
	NotNull bool
	Default sql.Expr // evaluated at insert time when the column is omitted
}

// IndexDef describes an index on a table.
type IndexDef struct {
	Name   string
	Table  string
	Using  string // "btree" or "gin"
	Exprs  []sql.Expr
	Unique bool
}

// Table describes a table.
type Table struct {
	ID      int64
	Name    string
	Columns []Column
	// PrimaryKey holds column ordinals of the primary key (empty if none).
	PrimaryKey []int
	// ForeignKeys are informational; enforcement is local-only, mirroring
	// how Citus enforces FKs between co-located shards.
	ForeignKeys []ForeignKey
	// Using is the storage access method: "" / "heap", or "columnar".
	Using string
	// Indexes on the table, including the implicit primary key index.
	Indexes []*IndexDef
}

// ForeignKey records a column-level REFERENCES constraint.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Catalog is a concurrency-safe table registry.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	nextID atomic.Int64
}

// New creates an empty catalog.
func New() *Catalog {
	c := &Catalog{tables: make(map[string]*Table)}
	c.nextID.Store(1)
	return c
}

// Create registers a new table built from a parsed CREATE TABLE statement.
func (c *Catalog) Create(stmt *sql.CreateTableStmt) (*Table, error) {
	t := &Table{
		Name:  stmt.Name,
		Using: stmt.Using,
	}
	seen := map[string]bool{}
	for _, cd := range stmt.Columns {
		if seen[cd.Name] {
			return nil, fmt.Errorf("column %q specified more than once", cd.Name)
		}
		seen[cd.Name] = true
		t.Columns = append(t.Columns, Column{
			Name:    cd.Name,
			Type:    cd.Type,
			NotNull: cd.NotNull || cd.PrimaryKey,
			Default: cd.Default,
		})
		if cd.PrimaryKey {
			t.PrimaryKey = append(t.PrimaryKey, len(t.Columns)-1)
		}
		if cd.References != "" {
			t.ForeignKeys = append(t.ForeignKeys, ForeignKey{
				Column: cd.Name, RefTable: cd.References, RefColumn: cd.RefColumn,
			})
		}
	}
	for _, pk := range stmt.PrimaryKey {
		idx := t.ColumnIndex(pk)
		if idx == -1 {
			return nil, fmt.Errorf("primary key column %q does not exist", pk)
		}
		t.Columns[idx].NotNull = true
		t.PrimaryKey = append(t.PrimaryKey, idx)
	}
	if len(t.PrimaryKey) > 0 {
		var exprs []sql.Expr
		for _, ord := range t.PrimaryKey {
			exprs = append(exprs, &sql.ColumnRef{Name: t.Columns[ord].Name})
		}
		t.Indexes = append(t.Indexes, &IndexDef{
			Name:   t.Name + "_pkey",
			Table:  t.Name,
			Using:  "btree",
			Exprs:  exprs,
			Unique: true,
		})
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[t.Name]; exists {
		if stmt.IfNotExists {
			return c.tables[t.Name], nil
		}
		return nil, fmt.Errorf("relation %q already exists", t.Name)
	}
	t.ID = c.nextID.Add(1)
	c.tables[t.Name] = t
	return t, nil
}

// Get looks up a table by name.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Drop removes a table. Returns false if it did not exist.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return false
	}
	delete(c.tables, name)
	return true
}

// AddIndex attaches an index definition to its table.
func (c *Catalog) AddIndex(def *IndexDef) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[def.Table]
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist", def.Table)
	}
	for _, existing := range t.Indexes {
		if existing.Name == def.Name {
			return nil, fmt.Errorf("index %q already exists", def.Name)
		}
	}
	t.Indexes = append(t.Indexes, def)
	return t, nil
}

// AddColumn appends a column to an existing table (ALTER TABLE ADD COLUMN).
func (c *Catalog) AddColumn(table string, col Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist", table)
	}
	if t.ColumnIndex(col.Name) != -1 {
		return nil, fmt.Errorf("column %q already exists", col.Name)
	}
	t.Columns = append(t.Columns, col)
	return t, nil
}

// List returns all table names sorted.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
