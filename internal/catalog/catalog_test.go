package catalog

import (
	"testing"

	"citusgo/internal/sql"
)

func create(t *testing.T, c *Catalog, ddl string) *Table {
	t.Helper()
	stmt, err := sql.Parse(ddl)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.Create(stmt.(*sql.CreateTableStmt))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCreateAndLookup(t *testing.T) {
	c := New()
	tbl := create(t, c, "CREATE TABLE t (id bigint PRIMARY KEY, name text NOT NULL, score double precision)")
	if tbl.ID == 0 {
		t.Fatal("no table id assigned")
	}
	if got, ok := c.Get("t"); !ok || got != tbl {
		t.Fatal("lookup failed")
	}
	if tbl.ColumnIndex("name") != 1 || tbl.ColumnIndex("missing") != -1 {
		t.Fatal("column index")
	}
	if !tbl.Columns[0].NotNull || !tbl.Columns[1].NotNull || tbl.Columns[2].NotNull {
		t.Fatalf("not-null flags: %+v", tbl.Columns)
	}
	// the primary key index is implicit
	if len(tbl.Indexes) != 1 || tbl.Indexes[0].Name != "t_pkey" || !tbl.Indexes[0].Unique {
		t.Fatalf("pk index: %+v", tbl.Indexes)
	}
}

func TestCompositePrimaryKey(t *testing.T) {
	c := New()
	tbl := create(t, c, "CREATE TABLE o (w bigint, d bigint, v text, PRIMARY KEY (w, d))")
	if len(tbl.PrimaryKey) != 2 || tbl.PrimaryKey[0] != 0 || tbl.PrimaryKey[1] != 1 {
		t.Fatalf("pk ordinals: %v", tbl.PrimaryKey)
	}
	if !tbl.Columns[0].NotNull || !tbl.Columns[1].NotNull {
		t.Fatal("pk columns must be not-null")
	}
}

func TestDuplicateHandling(t *testing.T) {
	c := New()
	create(t, c, "CREATE TABLE d (a bigint)")
	stmt, _ := sql.Parse("CREATE TABLE d (a bigint)")
	if _, err := c.Create(stmt.(*sql.CreateTableStmt)); err == nil {
		t.Fatal("duplicate table accepted")
	}
	stmt, _ = sql.Parse("CREATE TABLE IF NOT EXISTS d (a bigint)")
	if _, err := c.Create(stmt.(*sql.CreateTableStmt)); err != nil {
		t.Fatalf("IF NOT EXISTS must be a no-op: %v", err)
	}
	stmt, _ = sql.Parse("CREATE TABLE dup (a bigint, a text)")
	if _, err := c.Create(stmt.(*sql.CreateTableStmt)); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestIndexManagement(t *testing.T) {
	c := New()
	tbl := create(t, c, "CREATE TABLE i (a bigint, b text)")
	def := &IndexDef{Name: "i_b", Table: "i", Using: "btree", Exprs: []sql.Expr{&sql.ColumnRef{Name: "b"}}}
	if _, err := c.AddIndex(def); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Indexes) != 1 {
		t.Fatal("index not attached")
	}
	if _, err := c.AddIndex(def); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := c.AddIndex(&IndexDef{Name: "x", Table: "nope"}); err == nil {
		t.Fatal("index on missing table accepted")
	}
}

func TestAddColumnAndDrop(t *testing.T) {
	c := New()
	create(t, c, "CREATE TABLE m (a bigint)")
	if _, err := c.AddColumn("m", Column{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddColumn("m", Column{Name: "b"}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if !c.Drop("m") {
		t.Fatal("drop failed")
	}
	if c.Drop("m") {
		t.Fatal("double drop succeeded")
	}
}

func TestForeignKeysRecorded(t *testing.T) {
	c := New()
	create(t, c, "CREATE TABLE parent (id bigint PRIMARY KEY)")
	tbl := create(t, c, "CREATE TABLE child (id bigint PRIMARY KEY, pid bigint REFERENCES parent (id))")
	if len(tbl.ForeignKeys) != 1 || tbl.ForeignKeys[0].RefTable != "parent" {
		t.Fatalf("fks: %+v", tbl.ForeignKeys)
	}
}

func TestList(t *testing.T) {
	c := New()
	create(t, c, "CREATE TABLE b (a bigint)")
	create(t, c, "CREATE TABLE a (a bigint)")
	got := c.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("list: %v", got)
	}
}
