module citusgo

go 1.22
