# Convenience targets for the citusgo reproduction.

.PHONY: all build test bench figures examples vet fmt fmt-check lint race bench-smoke trace-smoke chaos-smoke chaos-soak soak soak-smoke fuzz-smoke ci

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

# fail if any file needs gofmt (mirrors the CI job)
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# static analysis: golangci-lint (config in .golangci.yml, mirrors the CI
# lint job) when installed, falling back to go vet so the target still
# works in bare environments
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; falling back to go vet"; \
		go vet ./...; \
	fi

test:
	go test -timeout 15m ./...

# race-enabled tests over the concurrent internals (mirrors the CI job);
# -shuffle=on randomizes test order so order-dependent tests can't hide —
# a failure prints the shuffle seed, reproduce with -shuffle=<seed>
race:
	go test -race -shuffle=on -timeout 20m ./internal/...

# run every benchmark once so benchmark code can't bit-rot (the figure
# benchmarks live in the root package, on top of internal/bench, plus the
# vectorized-kernel microbenchmark in internal/vec), and run the A3
# plan-cache, A4 pipelining, A5 vectorization, and A6 replica-routing
# ablations once (all variants) so the cached/pipelined/vectorized/
# replicated execution paths can't either — A5 and A6 also assert their
# counter splits (vec batches, replicated vs primary reads)
bench-smoke:
	go test -bench=. -benchtime=1x -run '^$$' -timeout 15m . ./internal/bench/... ./internal/vec
	go test -run 'TestAblationSlowStartPlanCache|TestAblationPipelining|TestAblationVectorized|TestAblationReplicaRouting' -count=1 -timeout 10m ./internal/bench

# run citusbench with the slow-query log catching everything and assert the
# tracing pipeline emitted at least one trace (see docs/tracing.md)
trace-smoke:
	@n=$$(go run ./cmd/citusbench -fig 7a -tiny -trace-slow 0 2>&1 | grep -c 'slow-trace'); \
		echo "trace-smoke: $$n slow-trace lines emitted"; test "$$n" -ge 1

# race-enabled chaos run: concurrent writers + worker crash/restart under
# probabilistic wire faults (see docs/fault.md). The seed is printed; a
# failure reproduces with FAULT_SEED=<seed> make chaos-smoke
chaos-smoke:
	go test -race -run TestChaosSmoke -count=1 -timeout 120s -v ./internal/fault/chaos

# the full replication chaos-soak matrix (nightly CI, see
# .github/workflows/chaos-soak.yml): 8 fixed seeds x sync/async WAL
# shipping, each run injecting ship/apply delays and commit-record faults
# before a forced failover. A failing cell writes its seed + trace ring to
# chaos-artifacts/ and reproduces with
#   CHAOS_SOAK_SEEDS=<seed> make chaos-soak
chaos-soak:
	CHAOS_SOAK_SEEDS=101,202,303,404,505,606,707,808 \
	CHAOS_ARTIFACT_DIR=$(CURDIR)/chaos-artifacts \
	go test -race -run 'TestChaosSoakMatrix|TestChaosAsyncBoundedStaleness|TestChaosPromoteCrashPoints' -count=1 -timeout 900s -v ./internal/fault/chaos

# long open-loop production soak (nightly CI, see
# .github/workflows/soak.yml): mixed tenant traffic (TPC-C + YCSB +
# ILIKE dashboards + 2PC ledger + serializable bank) at fixed arrival
# rates with seeded faults and periodic failovers, invariants checked
# continuously. A violation dumps seed + trace rings to soak-artifacts/
# and reproduces with the printed -soak-seed
soak:
	CHAOS_ARTIFACT_DIR=$(CURDIR)/soak-artifacts \
	go run ./cmd/citusbench -soak -soak-duration 120s -soak-failovers 3

# the PR-sized soak slice: a 30s mixed run with one failover (must pass),
# then the checker self-test — a canary run that deliberately loses one
# acked ledger batch and MUST fail, catch the violation, and dump a
# reproduction artifact; the same seed is then re-run to prove the
# violation reproduces deterministically
soak-smoke:
	CHAOS_ARTIFACT_DIR=$(CURDIR)/soak-artifacts \
	go run ./cmd/citusbench -soak -soak-duration 30s -soak-seed 4242 -soak-failovers 1
	@rm -rf $(CURDIR)/soak-artifacts-canary && mkdir -p $(CURDIR)/soak-artifacts-canary
	@echo "--- canary: a run that loses one acked write MUST fail ---"
	! go run ./cmd/citusbench -soak -soak-duration 5s -soak-seed 777 -soak-canary \
		-soak-artifacts $(CURDIR)/soak-artifacts-canary
	@test -n "$$(ls $(CURDIR)/soak-artifacts-canary)" || \
		{ echo "canary violation produced no artifact"; exit 1; }
	@grep -q 'acked-write' $(CURDIR)/soak-artifacts-canary/soak-seed-777.txt || \
		{ echo "artifact missing the acked-write violation"; exit 1; }
	@echo "--- canary: same seed must reproduce the violation ---"
	! go run ./cmd/citusbench -soak -soak-duration 5s -soak-seed 777 -soak-canary \
		-soak-artifacts $(CURDIR)/soak-artifacts-canary
	@echo "soak-smoke: clean run passed, canary caught + reproduced"

# short native-fuzz smoke: wire protocol (framing + pipeline Seq
# correlation) and vectorized-vs-row-path parity; longer local runs just
# extend the same corpus:
#   go test ./internal/wire -fuzz FuzzWireFraming -fuzztime 10m
#   go test ./internal/engine -fuzz FuzzVecParity -fuzztime 10m
fuzz-smoke:
	go test ./internal/wire -run '^$$' -fuzz FuzzWireFraming -fuzztime 15s
	go test ./internal/wire -run '^$$' -fuzz FuzzPipelineSeq -fuzztime 15s
	go test ./internal/engine -run '^$$' -fuzz FuzzVecParity -fuzztime 15s

# the full CI pipeline (.github/workflows/ci.yml), reproducible locally
ci: build vet fmt-check lint test race bench-smoke trace-smoke chaos-smoke soak-smoke fuzz-smoke

# one testing.B benchmark per paper figure (test scale)
bench:
	go test -bench=. -benchmem ./...

# regenerate every figure of the paper's evaluation at the default scale
figures:
	go run ./cmd/citusbench -fig all

examples:
	go run ./examples/quickstart
	go run ./examples/multitenant
	go run ./examples/realtime
	go run ./examples/venicedb
