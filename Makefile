# Convenience targets for the citusgo reproduction.

.PHONY: all build test bench figures examples vet fmt

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

test:
	go test ./...

# one testing.B benchmark per paper figure (test scale)
bench:
	go test -bench=. -benchmem ./...

# regenerate every figure of the paper's evaluation at the default scale
figures:
	go run ./cmd/citusbench -fig all

examples:
	go run ./examples/quickstart
	go run ./examples/multitenant
	go run ./examples/realtime
	go run ./examples/venicedb
