// Multitenant: the SaaS pattern of §2.1 — tables co-located by tenant id,
// a shared reference table, single-tenant transactions routed to one
// worker, and cross-tenant analytics fanned out over all shards.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"citusgo/internal/cluster"
	"citusgo/internal/types"
)

func main() {
	c, err := cluster.New(cluster.Config{Workers: 4, ShardCount: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	must := func(q string, params ...types.Datum) {
		if _, err := s.Exec(q, params...); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}

	// The shared-schema multi-tenant model: every tenant-owned table has a
	// tenant_id column; plans is a reference table shared across tenants.
	must(`CREATE TABLE tenants (tenant_id bigint PRIMARY KEY, name text, plan_id bigint)`)
	must(`CREATE TABLE projects (tenant_id bigint, project_id bigint, title text, PRIMARY KEY (tenant_id, project_id))`)
	must(`CREATE TABLE tasks (tenant_id bigint, project_id bigint, task_id bigint, done bool, details jsonb, PRIMARY KEY (tenant_id, project_id, task_id))`)
	must(`CREATE TABLE plans (plan_id bigint PRIMARY KEY, plan_name text, max_projects bigint)`)

	must(`SELECT create_distributed_table('tenants', 'tenant_id')`)
	must(`SELECT create_distributed_table('projects', 'tenant_id', colocate_with := 'tenants')`)
	must(`SELECT create_distributed_table('tasks', 'tenant_id', colocate_with := 'tenants')`)
	must(`SELECT create_reference_table('plans')`)

	must(`INSERT INTO plans (plan_id, plan_name, max_projects) VALUES (1, 'free', 3), (2, 'pro', 100)`)
	for t := 1; t <= 8; t++ {
		must("INSERT INTO tenants (tenant_id, name, plan_id) VALUES ($1, $2, $3)",
			int64(t), fmt.Sprintf("tenant-%d", t), int64(t%2+1))
		for p := 1; p <= 3; p++ {
			must("INSERT INTO projects (tenant_id, project_id, title) VALUES ($1, $2, $3)",
				int64(t), int64(p), fmt.Sprintf("project %d-%d", t, p))
			for k := 1; k <= 4; k++ {
				must(`INSERT INTO tasks (tenant_id, project_id, task_id, done, details) VALUES ($1, $2, $3, $4, $5)`,
					int64(t), int64(p), int64(k), k%2 == 0,
					fmt.Sprintf(`{"assignee": "user%d", "priority": %d}`, k, k))
			}
		}
	}

	// A single-tenant transaction: arbitrary SQL, routed in full to the
	// tenant's worker node (router planner), with local joins against the
	// reference table.
	fmt.Println("tenant 5 dashboard (routed to one worker):")
	res, err := s.Exec(`
		SELECT p.title, count(*) AS open_tasks, pl.plan_name
		FROM projects p
		JOIN tasks t ON t.tenant_id = p.tenant_id AND t.project_id = p.project_id
		JOIN tenants te ON te.tenant_id = p.tenant_id
		JOIN plans pl ON pl.plan_id = te.plan_id
		WHERE p.tenant_id = 5 AND t.done = false
		GROUP BY p.title, pl.plan_name ORDER BY p.title`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-14s open=%s plan=%s\n", types.Format(row[0]), types.Format(row[1]), types.Format(row[2]))
	}

	// Multi-statement single-tenant transaction: delegated to one node,
	// committing without 2PC (§3.7.1).
	must("BEGIN")
	must("UPDATE tasks SET done = true WHERE tenant_id = 5 AND project_id = 1 AND task_id = 1")
	must("INSERT INTO tasks (tenant_id, project_id, task_id, done, details) VALUES (5, 1, 99, false, '{\"assignee\": \"user9\"}')")
	must("COMMIT")

	// Cross-tenant analytics: a co-located distributed join over all
	// shards in parallel (§2.1 "analytics across all tenants").
	fmt.Println("\ncross-tenant task counts by plan (parallel fan-out):")
	res, err = s.Exec(`
		SELECT pl.plan_name, count(*) AS tasks
		FROM tasks t
		JOIN tenants te ON te.tenant_id = t.tenant_id
		JOIN plans pl ON pl.plan_id = te.plan_id
		GROUP BY pl.plan_name ORDER BY pl.plan_name`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-6s %s tasks\n", types.Format(row[0]), types.Format(row[1]))
	}

	// JSONB customization per tenant (§2.1: "adding new fields using the
	// JSONB data type").
	res, err = s.Exec(`SELECT count(*) FROM tasks WHERE tenant_id = 5 AND details->>'assignee' = 'user9'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntenant 5 tasks assigned to user9: %s\n", types.Format(res.Rows[0][0]))
}
