// Quickstart: boot a Citus cluster, distribute a table, and run queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"citusgo/internal/cluster"
	"citusgo/internal/types"
)

func main() {
	// A coordinator plus two workers, all in-process. Every node runs the
	// full engine plus the Citus layer, connected over the wire protocol.
	c, err := cluster.New(cluster.Config{Workers: 2, ShardCount: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Clients connect to the coordinator and use plain SQL.
	s := c.Session()
	must := func(q string, params ...types.Datum) {
		if _, err := s.Exec(q, params...); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}

	// A table is created locally first, then converted to a distributed
	// table with the create_distributed_table UDF — the same two steps as
	// in Citus (§3.3.1 of the paper).
	must("CREATE TABLE measurements (device_id bigint, ts timestamp, reading double precision)")
	must("SELECT create_distributed_table('measurements', 'device_id')")

	for d := 1; d <= 5; d++ {
		for i := 0; i < 20; i++ {
			must("INSERT INTO measurements (device_id, ts, reading) VALUES ($1, now(), $2)",
				int64(d), float64(d*100+i))
		}
	}

	// A filter on the distribution column routes to a single shard.
	res, err := s.Exec("SELECT count(*), avg(reading) FROM measurements WHERE device_id = 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device 3: count=%s avg=%s\n",
		types.Format(res.Rows[0][0]), types.Format(res.Rows[0][1]))

	// Without the filter, the query fans out to every shard in parallel
	// and the partial aggregates merge on the coordinator.
	res, err = s.Exec("SELECT device_id, count(*), max(reading) FROM measurements GROUP BY device_id ORDER BY device_id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-device summary (parallel, distributed SELECT):")
	for _, row := range res.Rows {
		fmt.Printf("  device %s: n=%s max=%s\n",
			types.Format(row[0]), types.Format(row[1]), types.Format(row[2]))
	}

	// EXPLAIN shows which distributed planner handled each query.
	for _, q := range []string{
		"SELECT count(*) FROM measurements WHERE device_id = 3",
		"SELECT count(*) FROM measurements",
	} {
		res, err := s.Exec("EXPLAIN " + q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nEXPLAIN", q)
		for _, row := range res.Rows {
			fmt.Println(" ", types.Format(row[0]))
		}
	}
}
