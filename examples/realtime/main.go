// Realtime: the real-time analytics pipeline of §2.2 (Figure 2) — a stream
// of JSON events is bulk-loaded with COPY, searched through a trigram GIN
// index, and incrementally pre-aggregated into a co-located rollup with
// INSERT..SELECT.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"time"

	"citusgo/internal/cluster"
	"citusgo/internal/types"
	"citusgo/internal/workload/gharchive"
)

func main() {
	c, err := cluster.New(cluster.Config{Workers: 4, ShardCount: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	s := c.Session()

	// raw events table, distributed by event id, with the pg_trgm-style
	// GIN expression index over the commit messages inside the JSON
	if err := gharchive.Setup(s, true, true); err != nil {
		log.Fatal(err)
	}
	// rollup destination, co-located with the events
	if err := gharchive.SetupTransformTarget(s, true); err != nil {
		log.Fatal(err)
	}

	// ingest: distributed COPY fans rows out to shard-specific streams
	gen := gharchive.NewGenerator(42, 3)
	start := time.Now()
	total := 0
	for batch := 0; batch < 10; batch++ {
		n, err := s.CopyFrom("github_events", []string{"event_id", "data"}, gen.Batch(500))
		if err != nil {
			log.Fatal(err)
		}
		total += n
	}
	fmt.Printf("ingested %d events in %s (distributed COPY)\n", total, time.Since(start).Round(time.Millisecond))

	// dashboard query: commits mentioning postgres, per day, served by the
	// trigram index on every shard in parallel
	res, err := s.Exec(gharchive.DashboardSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncommits mentioning 'postgres' per day:")
	for _, row := range res.Rows {
		fmt.Printf("  %s  %s commits\n", types.Format(row[0]), types.Format(row[1]))
	}

	// incremental rollup: a co-located INSERT..SELECT runs on each shard
	// pair in parallel (strategy 3 of §3.8)
	start = time.Now()
	ir, err := s.Exec(gharchive.TransformSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrollup: %d rows pre-aggregated in %s (co-located INSERT..SELECT)\n",
		ir.Affected, time.Since(start).Round(time.Millisecond))

	// the dashboard can now read the much smaller rollup
	res, err = s.Exec(`SELECT day, sum(commit_count) FROM push_commits GROUP BY day ORDER BY day`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntotal commits per day (from the rollup):")
	for _, row := range res.Rows {
		fmt.Printf("  %s  %s\n", types.Format(row[0]), types.Format(row[1]))
	}

	// show the plans: the transformation is fully pushed down
	res, err = s.Exec("EXPLAIN " + gharchive.TransformSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN of the rollup INSERT..SELECT:")
	for _, row := range res.Rows {
		fmt.Println(" ", types.Format(row[0]))
	}
}
