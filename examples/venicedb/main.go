// VeniceDB: the §5 case study — Microsoft's Windows-telemetry store. Raw
// measures are distributed by device id, pre-aggregated into co-located
// report tables, and the RQV dashboard's nested-subquery shape (GROUP BY
// deviceid inside, weighted averages outside) is pushed down in full
// because the subquery groups by the distribution column.
//
//	go run ./examples/venicedb
package main

import (
	"fmt"
	"log"

	"citusgo/internal/cluster"
	"citusgo/internal/types"
)

func main() {
	c, err := cluster.New(cluster.Config{Workers: 4, ShardCount: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	s := c.Session()
	must := func(q string, params ...types.Datum) {
		if _, err := s.Exec(q, params...); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}

	// measures: raw telemetry distributed by device id; reports:
	// device-level pre-aggregation, co-located with measures
	must(`CREATE TABLE measures (deviceid bigint, ts timestamp, build text, measure text, metric double precision)`)
	must(`SELECT create_distributed_table('measures', 'deviceid')`)
	must(`CREATE TABLE reports (deviceid bigint, build text, measure text, metric double precision)`)
	must(`SELECT create_distributed_table('reports', 'deviceid', colocate_with := 'measures')`)

	// ingest telemetry from many devices across two builds
	builds := []string{"build-22621", "build-22631"}
	for device := 1; device <= 200; device++ {
		for sample := 0; sample < 3; sample++ {
			base := float64(device%7) + float64(sample)
			must("INSERT INTO measures (deviceid, ts, build, measure, metric) VALUES ($1, now(), $2, 'boot_time', $3)",
				int64(device), builds[device%2], 5.0+base)
		}
	}

	// device-level pre-aggregation via distributed INSERT..SELECT
	// ("Distributed INSERT..SELECT commands are used to perform
	// device-level pre-aggregation of incoming data into several reports
	// tables", §5)
	res, err := s.Exec(`
		INSERT INTO reports (deviceid, build, measure, metric)
		SELECT deviceid, build, measure, avg(metric)
		FROM measures GROUP BY deviceid, build, measure`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-aggregated %d device-level report rows\n\n", res.Affected)

	// The RQV dashboard query shape: the inner subquery groups by the
	// distribution column (deviceid), so the logical pushdown planner
	// sends it to every worker whole; the outer average is computed from
	// partial aggregates merged on the coordinator — weighting by device
	// rather than by report count.
	rqv := `
		SELECT build, avg(device_avg) AS avg_boot_time, count(*) AS devices
		FROM (
			SELECT deviceid, build, avg(metric) AS device_avg
			FROM reports
			WHERE measure = 'boot_time'
			GROUP BY deviceid, build
		) AS subq
		GROUP BY build ORDER BY build`
	res, err = s.Exec(rqv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RQV: boot time by build (device-weighted):")
	for _, row := range res.Rows {
		fmt.Printf("  %-12s avg=%.3f devices=%s\n",
			types.Format(row[0]), row[1].(float64), types.Format(row[2]))
	}

	// show that the subquery was pushed down rather than pulled to the
	// coordinator
	res, err = s.Exec("EXPLAIN " + rqv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN:")
	for _, row := range res.Rows {
		fmt.Println(" ", types.Format(row[0]))
	}

	// "Atomic updates across nodes to cleanse bad data" (§5): a multi-shard
	// DML statement runs under 2PC
	res, err = s.Exec("DELETE FROM reports WHERE metric < 0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncleansing delete across all shards removed %d rows (2PC)\n", res.Affected)
}
